// End-host failure detection (§3.4): "end hosts ... can quickly detect
// individual dataplane failures via link status and avoid using the broken
// dataplane(s)".
//
// HealthMonitor models the information path of that sentence. The
// FaultInjector tells it the instant a fault hits the fabric; the monitor
// waits out a configurable link-status propagation delay (carrier-loss
// debounce + software notification on a real NIC) and only then lets the
// host stack react:
//   * every registered PathSelector marks the plane failed/recovered, so
//     new flows avoid (or resume using) it;
//   * the FlowFactory repaths live single-path flows off a failed plane,
//     abandons MPTCP subflows on it, and revives abandoned subflows when
//     the plane recovers.
// Plane-scoped events reach the selectors as plane up/down; cable-scoped
// fail/recover events (when propagate_cable_events is on) reach the
// selectors' route caches so new flows are computed around dead cables. A
// mid-fabric cable failure stays invisible to host link status (the host's
// own uplink is up), so in-flight flows must still save themselves via the
// transport-level path-suspect repath. Every detection is logged for
// analysis::RecoveryStats' time-to-detect accounting.
#pragma once

#include <deque>
#include <utility>
#include <vector>

#include "core/path_selector.hpp"
#include "sim/faults.hpp"
#include "telemetry/trace.hpp"

namespace pnet::core {

struct HealthMonitorConfig {
  /// Fault-to-host link-status propagation delay; 0 = instantaneous oracle.
  SimTime detect_delay = units::kMillisecond;
  /// Forward detected cable fail/recover events into the selectors' route
  /// caches (set_link_failed), so NEW flows route around a dead mid-fabric
  /// cable once the control plane has learned of it. Models switch-driven
  /// topology dissemination rather than host link status; flows already in
  /// flight still rely on the transport's path-suspect repath. Off = the
  /// pre-route-cache behavior where cable events only reach the log.
  bool propagate_cable_events = true;
};

class HealthMonitor : public sim::EventSource {
 public:
  /// (fabric event, simulated time the hosts learned of it).
  using Detection = std::pair<sim::FaultEvent, SimTime>;

  HealthMonitor(sim::EventQueue& events, HealthMonitorConfig config = {})
      : events_(events), config_(config) {}

  /// Registers a selector to drive on detected plane state changes.
  void add_selector(PathSelector& selector) {
    selectors_.push_back(&selector);
  }
  /// Registers the factory whose live flows react to plane transitions.
  void set_factory(sim::FlowFactory& factory) { factory_ = &factory; }
  /// Wires this monitor as a listener of `injector`. Deprecated for new
  /// code: subscribe through control::LinkStateBus instead, which fans one
  /// fabric-event stream out to the monitor, route caches, and the
  /// adaptive controller in a fixed order.
  void observe(sim::FaultInjector& injector);

  /// Records host-side detections ("detect" instants, arg = plane) and
  /// route-cache invalidations ("cache_invalidate" instants) into `trace`.
  /// Null detaches (the default zero-cost path); must outlive the monitor.
  void set_trace(telemetry::Trace* trace) { trace_ = trace; }

  /// Raw fabric-event intake; schedules the delayed host-side reaction.
  void on_fault(const sim::FaultEvent& event);

  void do_next_event() override;

  [[nodiscard]] const std::vector<Detection>& detections() const {
    return detections_;
  }
  [[nodiscard]] const HealthMonitorConfig& config() const { return config_; }

 private:
  void react(const sim::FaultEvent& event);

  sim::EventQueue& events_;
  HealthMonitorConfig config_;
  std::vector<PathSelector*> selectors_;
  sim::FlowFactory* factory_ = nullptr;
  telemetry::Trace* trace_ = nullptr;
  /// Events in flight to the hosts, with their delivery times. The delay is
  /// constant, so delivery order == arrival order and a deque suffices.
  std::deque<Detection> pending_;
  std::vector<Detection> detections_;
};

}  // namespace pnet::core
