#include "core/path_selector.hpp"

#include <cassert>

#include "routing/ecmp.hpp"
#include "util/rng.hpp"

namespace pnet::core {

namespace {

// The one policy-name table: to_string and policy_from_string both walk it,
// so the round-trip cannot drift when a policy is added.
struct PolicyName {
  RoutingPolicy policy;
  std::string_view name;
};
constexpr PolicyName kPolicyTable[] = {
    {RoutingPolicy::kEcmp, "ecmp"},
    {RoutingPolicy::kRoundRobin, "round-robin"},
    {RoutingPolicy::kShortestPlane, "shortest-plane"},
    {RoutingPolicy::kKspMultipath, "ksp-multipath"},
    {RoutingPolicy::kSizeThreshold, "size-threshold"},
};

}  // namespace

std::string to_string(RoutingPolicy policy) {
  for (const PolicyName& entry : kPolicyTable) {
    if (entry.policy == policy) return std::string(entry.name);
  }
  return "?";
}

std::optional<RoutingPolicy> policy_from_string(std::string_view name) {
  for (const PolicyName& entry : kPolicyTable) {
    if (entry.name == name) return entry.policy;
  }
  return std::nullopt;
}

std::string policy_names() {
  std::string out;
  for (const PolicyName& entry : kPolicyTable) {
    if (!out.empty()) out += ' ';
    out += entry.name;
  }
  return out;
}

PathSelector::PathSelector(const topo::ParallelNetwork& net,
                           PolicyConfig config,
                           std::shared_ptr<routing::RouteCache> cache)
    : net_(net), config_(std::move(config)), cache_(std::move(cache)),
      plane_failed_(static_cast<std::size_t>(net.num_planes()), false) {
  if (cache_ == nullptr) cache_ = std::make_shared<routing::RouteCache>();
  cache_->bind(net_);
}

void PathSelector::set_plane_failed(int plane, bool failed) {
  // Plane health is a selection-time filter, not a cache event: cached path
  // sets stay intact (bit-identical to the cache-less baseline) and plane
  // flaps cost nothing to recover from.
  plane_failed_[static_cast<std::size_t>(plane)] = failed;
}

void PathSelector::set_link_failed(int plane, LinkId link, bool failed) {
  cache_->set_link_state(plane, link, failed);
}

bool PathSelector::plane_usable(int plane) const {
  if (plane_failed_[static_cast<std::size_t>(plane)]) return false;
  if (config_.allowed_planes.empty()) return true;
  for (int allowed : config_.allowed_planes) {
    if (allowed == plane) return true;
  }
  return false;
}

std::vector<int> PathSelector::usable_planes() const {
  std::vector<int> out;
  for (int p = 0; p < net_.num_planes(); ++p) {
    if (plane_usable(p)) out.push_back(p);
  }
  return out;
}

void PathSelector::set_plane_weights(std::vector<double> weights) {
  plane_weights_ = std::move(weights);
}

std::size_t PathSelector::plane_pick(const std::vector<int>& usable,
                                     std::uint64_t key) const {
  const int n = static_cast<int>(usable.size());
  if (plane_weights_.empty()) {
    return static_cast<std::size_t>(routing::ecmp_pick(key, n));
  }
  auto weight_of = [&](int plane) {
    const auto i = static_cast<std::size_t>(plane);
    return (i < plane_weights_.size() && plane_weights_[i] > 0.0)
               ? plane_weights_[i]
               : 0.0;
  };
  double total = 0.0;
  for (int plane : usable) total += weight_of(plane);
  if (total <= 0.0) {  // all-zero bias: uniform fallback, never "no plane"
    return static_cast<std::size_t>(routing::ecmp_pick(key, n));
  }
  // 53-bit hash fraction in [0, 1) scaled onto the cumulative weights —
  // deterministic in (key, weights), no RNG state.
  const double u =
      static_cast<double>(mix64(key) >> 11) * 0x1.0p-53 * total;
  double cum = 0.0;
  std::size_t last_positive = 0;
  for (std::size_t j = 0; j < usable.size(); ++j) {
    const double w = weight_of(usable[j]);
    if (w <= 0.0) continue;
    cum += w;
    last_positive = j;
    if (u < cum) return j;
  }
  return last_positive;  // floating-point round-off at the top end
}

routing::RouteSnapshot PathSelector::ksp_paths(HostId src, HostId dst) {
  const std::uint64_t key = (static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(src.v))
                             << 32) |
                            static_cast<std::uint32_t>(dst.v);
  // Keep k candidates per plane (not just k overall) with per-pair
  // randomized tie-breaks, so plane failures can be filtered out at
  // selection time and fat-tree ties do not collapse onto one corner.
  return cache_->lookup(
      net_, routing::RouteQuery::ksp(src, dst, config_.k,
                                     mix64(key ^ 0xD1CE),
                                     config_.k * net_.num_planes()));
}

routing::RouteSnapshot PathSelector::spp_paths(HostId src, HostId dst) {
  return cache_->lookup(net_,
                        routing::RouteQuery::shortest_per_plane(src, dst));
}

routing::RouteSnapshot PathSelector::ecmp_paths(HostId src, HostId dst,
                                                int plane) {
  // Every single-path policy hashes among the plane's equal-cost shortest
  // paths (what a real ECMP dataplane does); enumerated once per pair and
  // plane, shared through the route cache.
  return cache_->lookup(net_, routing::RouteQuery::ecmp_plane(
                                  src, dst, plane, config_.ecmp_path_cap));
}

std::vector<routing::Path> PathSelector::shortest_plane_pick(
    HostId src, HostId dst, std::uint64_t flow_key) {
  // The "low-latency" single-path interface: restrict to the planes tied at
  // the global minimum hop count, then hash the flow over the union of
  // their equal-cost shortest paths. On heterogeneous P-Nets this usually
  // singles out one plane (the latency win of §5.2.1); on homogeneous ones
  // every plane ties, so flows spread plane-wide instead of piling onto
  // plane 0.
  const routing::RouteSnapshot spp = spp_paths(src, dst);
  int best_hops = -1;
  std::vector<routing::PathView> pool;
  std::vector<routing::RouteSnapshot> pinned;  // keeps pool views alive
  routing::PathView fallback;
  bool have_fallback = false;
  for (std::size_t i = 0; i < spp->size(); ++i) {
    const routing::PathView candidate = spp->view(i);
    if (!plane_usable(candidate.plane())) continue;
    if (!have_fallback) {
      fallback = candidate;
      have_fallback = true;
    }
    if (best_hops < 0) best_hops = candidate.hops();
    if (candidate.hops() != best_hops) break;  // sorted by hops
    routing::RouteSnapshot in_plane =
        ecmp_paths(src, dst, candidate.plane());
    for (std::size_t j = 0; j < in_plane->size(); ++j) {
      pool.push_back(in_plane->view(j));
    }
    pinned.push_back(std::move(in_plane));
  }
  if (pool.empty()) {
    return have_fallback ? std::vector<routing::Path>{fallback.materialize()}
                         : std::vector<routing::Path>{};
  }
  const int pick =
      routing::ecmp_pick(flow_key, static_cast<int>(pool.size()));
  return {pool[static_cast<std::size_t>(pick)].materialize()};
}

std::vector<routing::Path> PathSelector::select(HostId src, HostId dst,
                                                std::uint64_t bytes,
                                                std::uint64_t flow_key) {
  const std::vector<int> usable = usable_planes();
  if (usable.empty()) return {};

  // Filters the cached cross-plane KSP pool to usable planes, first k.
  auto usable_ksp = [&] {
    const routing::RouteSnapshot ksp = ksp_paths(src, dst);
    std::vector<routing::Path> out;
    for (std::size_t i = 0; i < ksp->size(); ++i) {
      const routing::PathView path = ksp->view(i);
      if (plane_usable(path.plane())) out.push_back(path.materialize());
      if (static_cast<int>(out.size()) == config_.k) break;
    }
    return out;
  };

  switch (config_.policy) {
    case RoutingPolicy::kEcmp: {
      // Hash onto a plane, then onto one equal-cost path within it — what a
      // standard ECMP dataplane does with the host applying the same idea
      // across planes.
      const int plane = usable[plane_pick(usable, mix64(flow_key) ^ 0x9E37)];
      const routing::RouteSnapshot in_plane = ecmp_paths(src, dst, plane);
      if (in_plane->empty()) return {};
      const int pick = routing::ecmp_pick(
          flow_key, static_cast<int>(in_plane->size()));
      return {in_plane->view(static_cast<std::size_t>(pick)).materialize()};
    }
    case RoutingPolicy::kRoundRobin: {
      // Cycle usable planes per source host (hash-offset start); within
      // the plane, hash among equal-cost shortest paths.
      const auto it = round_robin_
                          .try_emplace(src.v,
                                       mix64(static_cast<std::uint64_t>(
                                           static_cast<std::uint32_t>(src.v))))
                          .first;
      // With controller weights installed, the per-host cycle gives way to
      // a weighted hash of the same sequence number: still host-local and
      // deterministic, but biased toward the lighter planes.
      const std::uint64_t seq = it->second++;
      const std::size_t slot =
          plane_weights_.empty()
              ? static_cast<std::size_t>(seq % usable.size())
              : plane_pick(usable, mix64(seq));
      const int plane = usable[slot];
      const routing::RouteSnapshot in_plane = ecmp_paths(src, dst, plane);
      if (in_plane->empty()) return {};
      const int pick = routing::ecmp_pick(
          flow_key, static_cast<int>(in_plane->size()));
      return {in_plane->view(static_cast<std::size_t>(pick)).materialize()};
    }
    case RoutingPolicy::kShortestPlane:
      return shortest_plane_pick(src, dst, flow_key);
    case RoutingPolicy::kKspMultipath:
      return usable_ksp();
    case RoutingPolicy::kSizeThreshold: {
      if (bytes > config_.multipath_cutoff_bytes) {
        auto multi = usable_ksp();
        if (multi.size() > 1) return multi;
      }
      return shortest_plane_pick(src, dst, flow_key);  // small flows
    }
  }
  return {};
}

std::vector<routing::Path> PathSelector::repin(HostId src, HostId dst,
                                               std::uint64_t bytes,
                                               int target_plane) {
  (void)bytes;  // reserved for size-aware repin policies
  if (target_plane < 0 || target_plane >= net_.num_planes() ||
      !plane_usable(target_plane)) {
    return {};
  }
  const routing::RouteSnapshot in_plane = ecmp_paths(src, dst, target_plane);
  if (in_plane->empty()) return {};
  // Keyed by the repath sequence so successive repins of the same pair
  // spread over the plane's equal-cost set instead of colliding.
  const std::uint64_t key =
      mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src.v))
             << 32) ^
            static_cast<std::uint32_t>(dst.v) ^
            (0x4EB1 + (repath_counter_++ << 17)));
  const int pick =
      routing::ecmp_pick(key, static_cast<int>(in_plane->size()));
  return {in_plane->view(static_cast<std::size_t>(pick)).materialize()};
}

void PathSelector::enable_repath(sim::FlowFactory& factory) {
  factory.set_repath_provider(
      [this](HostId src, HostId dst, int suspect_plane,
             std::uint64_t bytes) -> std::vector<routing::Path> {
        const auto p = static_cast<std::size_t>(suspect_plane);
        // The suspect plane is off-limits for this pick only: a transport-
        // level suspicion (RTOs) is not a confirmed plane failure, so it
        // must not stick for unrelated future flows.
        const bool was_failed = plane_failed_[p];
        plane_failed_[p] = true;
        auto paths =
            select(src, dst, bytes,
                   mix64((static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(src.v))
                          << 32) ^
                         static_cast<std::uint32_t>(dst.v) ^
                         (0xFA17 + (repath_counter_++ << 17))));
        plane_failed_[p] = was_failed;
        return paths;
      });
}

workload::FlowStarter PathSelector::make_starter(sim::FlowFactory& factory) {
  return [this, &factory](HostId src, HostId dst, std::uint64_t bytes,
                          SimTime start,
                          sim::FlowFactory::FlowCallback on_complete) {
    const std::uint64_t flow_key =
        mix64((static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(src.v))
               << 32) ^
              static_cast<std::uint32_t>(dst.v) ^
              (static_cast<std::uint64_t>(factory.flows_created()) << 17));
    auto paths = select(src, dst, bytes, flow_key);
    assert(!paths.empty() && "no path between hosts");
    if (paths.size() == 1) {
      factory.tcp_flow(src, dst, paths.front(), bytes, start,
                       std::move(on_complete));
    } else {
      factory.mptcp_flow(src, dst, paths, bytes, start,
                         std::move(on_complete), config_.coupling);
    }
  };
}

}  // namespace pnet::core
