#include "core/path_selector.hpp"

#include <cassert>

#include "routing/ecmp.hpp"
#include "util/rng.hpp"

namespace pnet::core {

std::string to_string(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kEcmp: return "ecmp";
    case RoutingPolicy::kRoundRobin: return "round-robin";
    case RoutingPolicy::kShortestPlane: return "shortest-plane";
    case RoutingPolicy::kKspMultipath: return "ksp-multipath";
    case RoutingPolicy::kSizeThreshold: return "size-threshold";
  }
  return "?";
}

void PathSelector::set_plane_failed(int plane, bool failed) {
  plane_failed_[static_cast<std::size_t>(plane)] = failed;
}

bool PathSelector::plane_usable(int plane) const {
  if (plane_failed_[static_cast<std::size_t>(plane)]) return false;
  if (config_.allowed_planes.empty()) return true;
  for (int allowed : config_.allowed_planes) {
    if (allowed == plane) return true;
  }
  return false;
}

std::vector<int> PathSelector::usable_planes() const {
  std::vector<int> out;
  for (int p = 0; p < net_.num_planes(); ++p) {
    if (plane_usable(p)) out.push_back(p);
  }
  return out;
}

std::vector<routing::Path> PathSelector::shortest_plane_pick(
    const PairPaths& paths, std::uint64_t flow_key) const {
  // The "low-latency" single-path interface: restrict to the planes tied at
  // the global minimum hop count, then hash the flow over the union of
  // their equal-cost shortest paths. On heterogeneous P-Nets this usually
  // singles out one plane (the latency win of §5.2.1); on homogeneous ones
  // every plane ties, so flows spread plane-wide instead of piling onto
  // plane 0.
  int best_hops = -1;
  std::vector<const routing::Path*> pool;
  const routing::Path* fallback = nullptr;
  for (const auto& candidate : paths.shortest_per_plane) {
    if (!plane_usable(candidate.plane)) continue;
    if (fallback == nullptr) fallback = &candidate;
    if (best_hops < 0) best_hops = candidate.hops();
    if (candidate.hops() != best_hops) break;  // sorted by hops
    for (const auto& path :
         paths.ecmp[static_cast<std::size_t>(candidate.plane)]) {
      pool.push_back(&path);
    }
  }
  if (pool.empty()) return fallback != nullptr
                               ? std::vector<routing::Path>{*fallback}
                               : std::vector<routing::Path>{};
  const int pick =
      routing::ecmp_pick(flow_key, static_cast<int>(pool.size()));
  return {*pool[static_cast<std::size_t>(pick)]};
}

const PathSelector::PairPaths& PathSelector::pair_paths(HostId src,
                                                        HostId dst) {
  const std::uint64_t key = (static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(src.v))
                             << 32) |
                            static_cast<std::uint32_t>(dst.v);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  PairPaths paths;
  paths.shortest_per_plane = routing::shortest_per_plane(net_, src, dst);
  if (config_.policy == RoutingPolicy::kKspMultipath ||
      config_.policy == RoutingPolicy::kSizeThreshold) {
    // Keep k candidates per plane (not just k overall) with per-pair
    // randomized tie-breaks, so plane failures can be filtered out at
    // selection time and fat-tree ties do not collapse onto one corner.
    paths.ksp = routing::ksp_across_planes(
        net_, src, dst, config_.k, mix64(key ^ 0xD1CE),
        config_.k * net_.num_planes());
  }
  // Every single-path policy hashes among the plane's equal-cost shortest
  // paths (what a real ECMP dataplane does); enumerate them once per pair.
  paths.ecmp.reserve(static_cast<std::size_t>(net_.num_planes()));
  for (int p = 0; p < net_.num_planes(); ++p) {
    paths.ecmp.push_back(routing::ecmp_paths_in_plane(net_, p, src, dst,
                                                      config_.ecmp_path_cap));
  }
  return cache_.emplace(key, std::move(paths)).first->second;
}

std::vector<routing::Path> PathSelector::select(HostId src, HostId dst,
                                                std::uint64_t bytes,
                                                std::uint64_t flow_key) {
  const PairPaths& paths = pair_paths(src, dst);
  const std::vector<int> usable = usable_planes();
  if (usable.empty()) return {};

  // Filters the cached cross-plane KSP pool to usable planes, first k.
  auto usable_ksp = [&] {
    std::vector<routing::Path> out;
    for (const auto& path : paths.ksp) {
      if (plane_usable(path.plane)) out.push_back(path);
      if (static_cast<int>(out.size()) == config_.k) break;
    }
    return out;
  };

  switch (config_.policy) {
    case RoutingPolicy::kEcmp: {
      // Hash onto a plane, then onto one equal-cost path within it — what a
      // standard ECMP dataplane does with the host applying the same idea
      // across planes.
      const int plane = usable[static_cast<std::size_t>(routing::ecmp_pick(
          mix64(flow_key) ^ 0x9E37, static_cast<int>(usable.size())))];
      const auto& in_plane = paths.ecmp[static_cast<std::size_t>(plane)];
      if (in_plane.empty()) return {};
      const int pick = routing::ecmp_pick(flow_key,
                                          static_cast<int>(in_plane.size()));
      return {in_plane[static_cast<std::size_t>(pick)]};
    }
    case RoutingPolicy::kRoundRobin: {
      // Cycle usable planes per source host (hash-offset start); within
      // the plane, hash among equal-cost shortest paths.
      const auto it = round_robin_
                          .try_emplace(src.v,
                                       mix64(static_cast<std::uint64_t>(
                                           static_cast<std::uint32_t>(src.v))))
                          .first;
      const int plane = usable[static_cast<std::size_t>(
          it->second++ % usable.size())];
      const auto& in_plane = paths.ecmp[static_cast<std::size_t>(plane)];
      if (in_plane.empty()) return {};
      const int pick = routing::ecmp_pick(flow_key,
                                          static_cast<int>(in_plane.size()));
      return {in_plane[static_cast<std::size_t>(pick)]};
    }
    case RoutingPolicy::kShortestPlane:
      return shortest_plane_pick(paths, flow_key);
    case RoutingPolicy::kKspMultipath:
      return usable_ksp();
    case RoutingPolicy::kSizeThreshold: {
      if (bytes > config_.multipath_cutoff_bytes) {
        auto multi = usable_ksp();
        if (multi.size() > 1) return multi;
      }
      return shortest_plane_pick(paths, flow_key);  // small flows
    }
  }
  return {};
}

void PathSelector::enable_repath(sim::FlowFactory& factory) {
  factory.set_repath_provider(
      [this](HostId src, HostId dst, int suspect_plane,
             std::uint64_t bytes) -> std::vector<routing::Path> {
        const auto p = static_cast<std::size_t>(suspect_plane);
        // The suspect plane is off-limits for this pick only: a transport-
        // level suspicion (RTOs) is not a confirmed plane failure, so it
        // must not stick for unrelated future flows.
        const bool was_failed = plane_failed_[p];
        plane_failed_[p] = true;
        auto paths =
            select(src, dst, bytes,
                   mix64((static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(src.v))
                          << 32) ^
                         static_cast<std::uint32_t>(dst.v) ^
                         (0xFA17 + (repath_counter_++ << 17))));
        plane_failed_[p] = was_failed;
        return paths;
      });
}

workload::FlowStarter PathSelector::make_starter(sim::FlowFactory& factory) {
  return [this, &factory](HostId src, HostId dst, std::uint64_t bytes,
                          SimTime start,
                          sim::FlowFactory::FlowCallback on_complete) {
    const std::uint64_t flow_key =
        mix64((static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(src.v))
               << 32) ^
              static_cast<std::uint32_t>(dst.v) ^
              (static_cast<std::uint64_t>(factory.flows_created()) << 17));
    auto paths = select(src, dst, bytes, flow_key);
    assert(!paths.empty() && "no path between hosts");
    if (paths.size() == 1) {
      factory.tcp_flow(src, dst, paths.front(), bytes, start,
                       std::move(on_complete));
    } else {
      factory.mptcp_flow(src, dst, paths, bytes, start,
                         std::move(on_complete), config_.coupling);
    }
  };
}

}  // namespace pnet::core
