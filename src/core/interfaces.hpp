// The end-host API of §3.4: "end hosts ... can provide pseudo/proxy
// interfaces like 'low-latency' single-shortest-path and 'high-throughput'
// multipath interfaces. Applications/flows can use special tags like
// traffic classes to choose how to take advantage of the multiple
// dataplanes."
//
// HostInterfaces bundles one PathSelector per interface over a shared
// FlowFactory, so an application picks per flow — exactly the tag-based
// dispatch the paper sketches — while everything shares one simulated
// fabric.
#pragma once

#include <memory>

#include "core/path_selector.hpp"

namespace pnet::core {

class HealthMonitor;

/// The traffic classes applications tag flows with.
enum class TrafficClass : std::uint8_t {
  /// Single path on the plane with the fewest hops: small RPCs.
  kLowLatency,
  /// MPTCP over the K globally-shortest paths: bulk transfers.
  kHighThroughput,
  /// The §5.1.2 size-threshold policy: let the stack decide per flow.
  kDefault,
};

[[nodiscard]] std::string to_string(TrafficClass traffic_class);

class HostInterfaces {
 public:
  /// `k` is the multipath degree of the high-throughput interface; the
  /// default interface uses it with the paper's 100 MB cutoff.
  HostInterfaces(const topo::ParallelNetwork& net,
                 sim::FlowFactory& factory, int k = 8);

  /// The flow starter for one traffic class.
  [[nodiscard]] const workload::FlowStarter& starter(
      TrafficClass traffic_class) const;

  /// Tag-dispatching starter: launches `bytes` from src to dst under the
  /// given class.
  void send(TrafficClass traffic_class, HostId src, HostId dst,
            std::uint64_t bytes, SimTime start,
            sim::FlowFactory::FlowCallback on_complete = {}) const;

  /// Failure propagation (§3.4 link-status detection) to every interface.
  void set_plane_failed(int plane, bool failed);

  /// Registers all three interfaces' selectors with a HealthMonitor, so
  /// detected plane events reach every traffic class.
  void register_with(HealthMonitor& monitor);

  [[nodiscard]] PathSelector& selector(TrafficClass traffic_class);

 private:
  std::unique_ptr<PathSelector> low_latency_;
  std::unique_ptr<PathSelector> high_throughput_;
  std::unique_ptr<PathSelector> default_;
  workload::FlowStarter low_latency_starter_;
  workload::FlowStarter high_throughput_starter_;
  workload::FlowStarter default_starter_;
};

}  // namespace pnet::core
