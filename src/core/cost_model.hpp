// Component-count cost model reproducing Table 1: serial scale-out fat
// tree, serial chassis-based fat tree, and the N-way parallel P-Net, all
// built from the same merchant-silicon switch chip.
//
// Conventions follow the paper:
//   * "links" counts inter-switch cables only (host links are identical in
//     every design and excluded);
//   * "hops" counts switch chips traversed host-to-host;
//   * the parallel design runs each chip in its high-radix configuration
//     (radix x planes at 1/planes the per-port speed), bundles the planes'
//     cables together, and packages one chip per plane into a shared box
//     (§3.3, §6.1).
#pragma once

#include <cstdint>
#include <string>

namespace pnet::core {

struct ComponentCount {
  std::string architecture;
  int tiers = 0;
  int hops = 0;
  std::int64_t chips = 0;
  std::int64_t boxes = 0;
  std::int64_t links = 0;
};

/// t-tier folded-Clos scale-out fat tree of `radix`-port chips, one chip
/// per box. Tiers are chosen as the minimum supporting `hosts`.
ComponentCount serial_scale_out(std::int64_t hosts, int radix);

/// Chassis-based fat tree: 2 tiers of chassis built internally from
/// `radix`-port chips. Spine chassis are non-blocking 3-stage Clos
/// (3/2 * ports/radix * ... chips); aggregation chassis are 2-stage
/// blocking, as deployed in production (§2.2).
ComponentCount serial_chassis(std::int64_t hosts, int radix,
                              int chassis_ports);

/// N-way parallel P-Net: each plane is a 2-tier fat tree of chips run at
/// high radix (radix * planes ports). `bundle` merges the planes' parallel
/// cables (§6.1); `shared_boxes` packages one chip per plane together.
ComponentCount parallel_pnet(std::int64_t hosts, int radix, int planes,
                             bool bundle = true, bool shared_boxes = true);

/// Deployment estimate per §6.1: fiber runs, optical transceivers, patch
/// panel ports, and power. With an optically-switched core (patch panels /
/// OCS / rotor switches), in-fabric transceivers are eliminated — the
/// paper's "key scaling mechanism into Terabit ethernet".
struct DeploymentEstimate {
  std::int64_t fiber_runs = 0;       // physical cable pulls
  std::int64_t transceivers = 0;     // pluggable optics
  std::int64_t patch_panel_ports = 0;
  double switch_power_kw = 0.0;
  double transceiver_power_kw = 0.0;

  [[nodiscard]] double total_power_kw() const {
    return switch_power_kw + transceiver_power_kw;
  }
};

struct DeploymentAssumptions {
  /// Merchant-silicon switch chip, full configuration.
  double watts_per_chip = 350.0;
  /// One pluggable optic per fiber end.
  double watts_per_transceiver = 12.0;
  /// Replace the electrically-switched core's transceivers with optical
  /// patch panels / OCS (§6.1-§6.2).
  bool optical_core = false;
};

/// Deployment costs for a design produced by the generators above.
DeploymentEstimate estimate_deployment(const ComponentCount& design,
                                       const DeploymentAssumptions&
                                           assumptions = {});

}  // namespace pnet::core
