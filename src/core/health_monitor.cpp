#include "core/health_monitor.hpp"

namespace pnet::core {

void HealthMonitor::observe(sim::FaultInjector& injector) {
  injector.add_listener(
      [this](const sim::FaultEvent& event) { on_fault(event); });
}

void HealthMonitor::on_fault(const sim::FaultEvent& event) {
  pending_.emplace_back(event, events_.now() + config_.detect_delay);
  events_.schedule_in(config_.detect_delay, this);
}

void HealthMonitor::do_next_event() {
  while (!pending_.empty() && pending_.front().second <= events_.now()) {
    const Detection detection = pending_.front();
    pending_.pop_front();
    detections_.push_back(detection);
    react(detection.first);
  }
}

void HealthMonitor::react(const sim::FaultEvent& event) {
  PNET_TRACE_INSTANT(trace_, "detect", events_.now(),
                     static_cast<std::int64_t>(event.plane));
  switch (event.kind) {
    case sim::FaultKind::kPlaneFail:
      for (PathSelector* selector : selectors_) {
        selector->set_plane_failed(event.plane, true);
      }
      if (factory_ != nullptr) factory_->on_plane_failed(event.plane);
      break;
    case sim::FaultKind::kPlaneRecover:
      for (PathSelector* selector : selectors_) {
        selector->set_plane_failed(event.plane, false);
      }
      if (factory_ != nullptr) factory_->on_plane_recovered(event.plane);
      break;
    case sim::FaultKind::kCableFail:
    case sim::FaultKind::kCableRecover:
      // Not visible in host link status (the host's own uplink stays up),
      // but once the control plane disseminates the change the selectors'
      // route caches invalidate affected entries so new flows avoid (or
      // resume using) the cable. In-flight flows still depend on the
      // transport's path-suspect repath.
      if (config_.propagate_cable_events) {
        for (PathSelector* selector : selectors_) {
          selector->set_link_failed(event.plane, event.link,
                                    event.kind == sim::FaultKind::kCableFail);
        }
        PNET_TRACE_INSTANT(trace_, "cache_invalidate", events_.now(),
                           (static_cast<std::int64_t>(event.plane) << 32) |
                               static_cast<std::uint32_t>(event.link.v));
      }
      break;
    default:
      // Degrade/restore keep the cable in service (possibly lossy/slow);
      // routing around it is the transport's call, not the cache's.
      break;
  }
}

}  // namespace pnet::core
