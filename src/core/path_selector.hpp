// P-Net end-host path selection — the paper's core contribution (§3.4, §4).
//
// The end host owns the plane/path decision in a P-Net (packets cannot
// change planes in flight), so this class is where every policy the paper
// studies lives:
//   * kEcmp          — hash the flow onto one plane, and onto one equal-cost
//                      path inside it (the naive baseline of §4 that wastes
//                      parallel capacity on sparse traffic);
//   * kRoundRobin    — cycle planes per flow, shortest path within the
//                      plane (the §3.4 default load balancer);
//   * kShortestPlane — the "low-latency" interface: single path on the
//                      plane offering the fewest hops (heterogeneous P-Nets'
//                      latency win, §5.2.1);
//   * kKspMultipath  — MPTCP over the K globally-shortest paths across all
//                      planes (§4's recommended transport);
//   * kSizeThreshold — the empirical §5.1.2 policy: small flows single-path
//                      on the shortest plane, bulk flows K-way MPTCP.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "routing/plane_paths.hpp"
#include "routing/route_cache.hpp"
#include "sim/network.hpp"
#include "topo/parallel.hpp"
#include "workload/apps.hpp"

namespace pnet::core {

enum class RoutingPolicy : std::uint8_t {
  kEcmp,
  kRoundRobin,
  kShortestPlane,
  kKspMultipath,
  kSizeThreshold,
};

[[nodiscard]] std::string to_string(RoutingPolicy policy);

/// String-keyed policy registry, shared by every bench/config surface so
/// ablations name policies identically everywhere. `to_string` and
/// `policy_from_string` round-trip over the same table; unknown names
/// return nullopt (callers fail fast listing policy_names()).
[[nodiscard]] std::optional<RoutingPolicy> policy_from_string(
    std::string_view name);
/// Every registered policy name, in enum order ("ecmp round-robin ...").
[[nodiscard]] std::string policy_names();

struct PolicyConfig {
  RoutingPolicy policy = RoutingPolicy::kRoundRobin;
  /// Multipath degree for kKspMultipath / the bulk side of kSizeThreshold.
  int k = 8;
  /// kSizeThreshold cutoff: flows strictly larger than this use multipath.
  /// 100 MB is the paper's empirical small/large boundary (§5.1.2).
  std::uint64_t multipath_cutoff_bytes = 100'000'000;
  /// Cap on enumerated equal-cost paths per plane for kEcmp.
  int ecmp_path_cap = 64;
  sim::Coupling coupling = sim::Coupling::kLia;
  /// Planes this selector may use (empty = all). The §7 performance-
  /// isolation mechanism: pin a traffic class/tenant to its own plane(s)
  /// by giving it a selector restricted to them.
  std::vector<int> allowed_planes;
};

class PathSelector {
 public:
  /// `cache` (optional) shares one compiled route store across selectors —
  /// e.g. every trial of an experiment cell. Without it the selector owns a
  /// private cache. Either way all path computation and per-pair caching
  /// lives in routing::RouteCache; the selector only applies policy.
  PathSelector(const topo::ParallelNetwork& net, PolicyConfig config,
               std::shared_ptr<routing::RouteCache> cache = nullptr);

  /// The paths a new flow of `bytes` should use. `flow_key` feeds the ECMP
  /// hash / round-robin sequencing; callers pass a per-flow unique value.
  /// One path => single-path TCP; several => MPTCP, one subflow per path.
  std::vector<routing::Path> select(HostId src, HostId dst,
                                    std::uint64_t bytes,
                                    std::uint64_t flow_key);

  /// Wraps this selector and a flow factory into the workload-facing flow
  /// starter: each request picks paths here, then launches TCP or MPTCP.
  workload::FlowStarter make_starter(sim::FlowFactory& factory);

  /// Marks a plane failed/recovered: the §3.4 link-status reaction. New
  /// flows avoid the plane immediately (graceful degradation); flows in
  /// flight are the transport's problem.
  void set_plane_failed(int plane, bool failed);

  /// Reports a cable (link) failure or recovery to the route cache: cached
  /// entries whose paths traverse the link are recomputed on next use, so
  /// new flows route around the dead cable. `link` is the plane-local id of
  /// either direction of the duplex pair; both directions are affected.
  void set_link_failed(int plane, LinkId link, bool failed);

  /// Installs this selector as the factory's repath provider, so flows in
  /// flight stop being "the transport's problem": when a TcpSrc declares
  /// its path suspect (consecutive RTOs) or a detected plane failure forces
  /// a repath, the factory asks here for a fresh path that avoids the
  /// suspect plane on top of everything already marked failed. Returns
  /// nothing when no other plane is usable (a serial network has nowhere
  /// to go — the flow must ride out the fault on its current path).
  void enable_repath(sim::FlowFactory& factory);
  [[nodiscard]] bool plane_usable(int plane) const;

  // Actuator interface (src/control) — policy logic stops being reachable
  // only at flow-admission time.

  /// Biases the plane pick of the hash-based single-path policies (kEcmp,
  /// kRoundRobin falls back to hashing when weighted): plane p is chosen
  /// with probability weight[p] / sum over usable planes. Empty vector (the
  /// default) restores the unbiased pick — and keeps controller-off runs
  /// byte-identical to the pre-weights selector. Weights must be >= 0; an
  /// all-zero total falls back to uniform.
  void set_plane_weights(std::vector<double> weights);
  [[nodiscard]] const std::vector<double>& plane_weights() const {
    return plane_weights_;
  }

  /// Re-pins one flow onto `target_plane`: returns a single equal-cost path
  /// on that plane (hashed by an internal repin sequence so successive
  /// repins of the same pair spread over the plane's path set), or empty
  /// when the plane is unusable or has no path. The caller (the control
  /// plane, via sim::FlowFactory::repin_flows) applies it to the live
  /// transport; this method only answers the path question.
  std::vector<routing::Path> repin(HostId src, HostId dst,
                                   std::uint64_t bytes, int target_plane);

  [[nodiscard]] const PolicyConfig& config() const { return config_; }

  /// The (possibly shared) route cache — counters feed experiment reports.
  [[nodiscard]] routing::RouteCache& route_cache() { return *cache_; }
  [[nodiscard]] const std::shared_ptr<routing::RouteCache>&
  route_cache_ptr() const {
    return cache_;
  }

 private:
  routing::RouteSnapshot ksp_paths(HostId src, HostId dst);
  routing::RouteSnapshot spp_paths(HostId src, HostId dst);
  routing::RouteSnapshot ecmp_paths(HostId src, HostId dst, int plane);
  std::vector<routing::Path> shortest_plane_pick(HostId src, HostId dst,
                                                 std::uint64_t flow_key);
  [[nodiscard]] std::vector<int> usable_planes() const;
  /// Index into `usable` for hash `key`: uniform when no weights are set,
  /// weight-proportional otherwise. Deterministic in (key, weights).
  [[nodiscard]] std::size_t plane_pick(const std::vector<int>& usable,
                                       std::uint64_t key) const;

  const topo::ParallelNetwork& net_;
  PolicyConfig config_;
  std::shared_ptr<routing::RouteCache> cache_;
  /// Planes currently marked failed by set_plane_failed.
  std::vector<bool> plane_failed_;
  /// Controller-set plane bias; empty = unbiased (the seed behavior).
  std::vector<double> plane_weights_;
  /// Per-source round-robin counters, seeded with a per-host hash offset.
  /// A single global counter would synchronize plane choice across hosts
  /// (every m-th flow in creation order lands on the same plane), which
  /// concentrates fan-in traffic of a receiver onto one plane — exactly the
  /// pathology host-local round-robin (§3.4) avoids.
  std::unordered_map<std::int32_t, std::uint64_t> round_robin_;
  /// Sequence number feeding repath flow keys, so successive repaths of the
  /// same pair hash onto different equal-cost paths.
  std::uint64_t repath_counter_ = 0;
};

}  // namespace pnet::core
