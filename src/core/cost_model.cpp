#include "core/cost_model.hpp"

#include <stdexcept>

namespace pnet::core {

namespace {

/// hosts supported by a t-tier folded Clos of radix-k chips: 2 * (k/2)^t.
std::int64_t clos_hosts(int radix, int tiers) {
  std::int64_t h = 2;
  for (int t = 0; t < tiers; ++t) h *= radix / 2;
  return h;
}

}  // namespace

ComponentCount serial_scale_out(std::int64_t hosts, int radix) {
  if (radix < 2 || radix % 2 != 0) {
    throw std::invalid_argument("radix must be even");
  }
  int tiers = 1;
  while (clos_hosts(radix, tiers) < hosts) ++tiers;
  const std::int64_t supported = clos_hosts(radix, tiers);

  // A full t-tier fat tree has (2t-1) * (k/2)^(t-1) chips.
  std::int64_t half_pow = 1;
  for (int t = 0; t < tiers - 1; ++t) half_pow *= radix / 2;

  ComponentCount c;
  c.architecture = "serial scale-out";
  c.tiers = tiers;
  c.hops = 2 * tiers - 1;
  c.chips = static_cast<std::int64_t>(2 * tiers - 1) * half_pow;
  c.boxes = c.chips;  // one chip per box
  c.links = static_cast<std::int64_t>(tiers - 1) * supported;
  return c;
}

ComponentCount serial_chassis(std::int64_t hosts, int radix,
                              int chassis_ports) {
  if (chassis_ports % 2 != 0) {
    throw std::invalid_argument("chassis ports must be even");
  }
  // Internal chassis construction from radix-port chips (§2.2):
  //  * spine: non-blocking 3-stage Clos -> 3 * ports / radix chips
  //    (e.g. 128-port from 16-port chips = 24 chips);
  //  * aggregation: 2-stage blocking -> 2 * ports / radix chips
  //    (e.g. 16 chips for 128 ports).
  const int spine_chips = 3 * chassis_ports / radix;
  const int agg_chips = 2 * chassis_ports / radix;

  // 2-tier fat tree of chassis: hosts = ports^2 / 2.
  const std::int64_t supported =
      static_cast<std::int64_t>(chassis_ports) * chassis_ports / 2;
  if (supported < hosts) {
    throw std::invalid_argument("chassis design too small for host count");
  }
  const std::int64_t agg_boxes = hosts / (chassis_ports / 2);
  const std::int64_t spine_boxes = agg_boxes / 2;

  ComponentCount c;
  c.architecture = "serial chassis";
  c.tiers = 2;
  // host -> agg (2 chips) -> spine (3 chips) -> agg (2 chips) -> host.
  c.hops = 2 + 3 + 2;
  c.chips = agg_boxes * agg_chips + spine_boxes * spine_chips;
  c.boxes = agg_boxes + spine_boxes;
  c.links = hosts;  // one uplink per host worth of agg<->spine cables
  return c;
}

ComponentCount parallel_pnet(std::int64_t hosts, int radix, int planes,
                             bool bundle, bool shared_boxes) {
  // Each chip runs at high radix: radix * planes ports at 1/planes speed
  // (§3.3: "more ports at lower speed").
  const int high_radix = radix * planes;
  const std::int64_t plane_hosts =
      static_cast<std::int64_t>(high_radix) * high_radix / 2;
  if (plane_hosts < hosts) {
    throw std::invalid_argument("plane design too small for host count");
  }
  const std::int64_t edge = hosts / (high_radix / 2);
  const std::int64_t spine = edge / 2;

  ComponentCount c;
  c.architecture = std::to_string(planes) + "x parallel";
  c.tiers = 2;
  c.hops = 3;  // edge -> spine -> edge, single chip each
  c.chips = planes * (edge + spine);
  c.boxes = shared_boxes ? (edge + spine) : c.chips;
  const std::int64_t per_plane_links = hosts;  // edge<->spine cables
  c.links = bundle ? per_plane_links : per_plane_links * planes;
  return c;
}

DeploymentEstimate estimate_deployment(
    const ComponentCount& design, const DeploymentAssumptions& assumptions) {
  DeploymentEstimate estimate;
  estimate.fiber_runs = design.links;
  // Two ends per fiber run. An optical core replaces the in-fabric optics
  // with passive patch-panel ports / OCS ports instead.
  if (assumptions.optical_core) {
    estimate.transceivers = 0;
    estimate.patch_panel_ports = design.links * 2;
  } else {
    estimate.transceivers = design.links * 2;
    estimate.patch_panel_ports = 0;
  }
  estimate.switch_power_kw =
      static_cast<double>(design.chips) * assumptions.watts_per_chip / 1e3;
  estimate.transceiver_power_kw =
      static_cast<double>(estimate.transceivers) *
      assumptions.watts_per_transceiver / 1e3;
  return estimate;
}

}  // namespace pnet::core
