#include "core/interfaces.hpp"

#include <stdexcept>

#include "core/health_monitor.hpp"

namespace pnet::core {

std::string to_string(TrafficClass traffic_class) {
  switch (traffic_class) {
    case TrafficClass::kLowLatency: return "low-latency";
    case TrafficClass::kHighThroughput: return "high-throughput";
    case TrafficClass::kDefault: return "default";
  }
  return "?";
}

HostInterfaces::HostInterfaces(const topo::ParallelNetwork& net,
                               sim::FlowFactory& factory, int k) {
  PolicyConfig low;
  low.policy = RoutingPolicy::kShortestPlane;
  low_latency_ = std::make_unique<PathSelector>(net, low);

  PolicyConfig high;
  high.policy = RoutingPolicy::kKspMultipath;
  high.k = k;
  high_throughput_ = std::make_unique<PathSelector>(net, high);

  PolicyConfig fallback;
  fallback.policy = RoutingPolicy::kSizeThreshold;
  fallback.k = k;
  default_ = std::make_unique<PathSelector>(net, fallback);

  low_latency_starter_ = low_latency_->make_starter(factory);
  high_throughput_starter_ = high_throughput_->make_starter(factory);
  default_starter_ = default_->make_starter(factory);
}

const workload::FlowStarter& HostInterfaces::starter(
    TrafficClass traffic_class) const {
  switch (traffic_class) {
    case TrafficClass::kLowLatency: return low_latency_starter_;
    case TrafficClass::kHighThroughput: return high_throughput_starter_;
    case TrafficClass::kDefault: return default_starter_;
  }
  throw std::invalid_argument("unknown traffic class");
}

void HostInterfaces::send(TrafficClass traffic_class, HostId src, HostId dst,
                          std::uint64_t bytes, SimTime start,
                          sim::FlowFactory::FlowCallback on_complete) const {
  starter(traffic_class)(src, dst, bytes, start, std::move(on_complete));
}

void HostInterfaces::set_plane_failed(int plane, bool failed) {
  low_latency_->set_plane_failed(plane, failed);
  high_throughput_->set_plane_failed(plane, failed);
  default_->set_plane_failed(plane, failed);
}

void HostInterfaces::register_with(HealthMonitor& monitor) {
  monitor.add_selector(*low_latency_);
  monitor.add_selector(*high_throughput_);
  monitor.add_selector(*default_);
}

PathSelector& HostInterfaces::selector(TrafficClass traffic_class) {
  switch (traffic_class) {
    case TrafficClass::kLowLatency: return *low_latency_;
    case TrafficClass::kHighThroughput: return *high_throughput_;
    case TrafficClass::kDefault: return *default_;
  }
  throw std::invalid_argument("unknown traffic class");
}

}  // namespace pnet::core
