// One-stop simulation harness: builds the topology, the simulated network,
// the path selector, and the workload-facing flow starter in the right
// order. Benches and examples compose experiments from this plus the
// workload drivers.
#pragma once

#include <memory>
#include <string>

#include "core/path_selector.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/telemetry_driver.hpp"
#include "telemetry/telemetry.hpp"
#include "topo/parallel.hpp"
#include "util/audit.hpp"
#include "util/cancel.hpp"
#include "workload/apps.hpp"

namespace pnet::core {

class SimHarness {
 public:
  /// Named construction options — everything beyond `spec` and `policy` is
  /// opt-in, so call sites read as `SimHarness({.spec = s, .policy = p})`.
  struct Options {
    topo::NetworkSpec spec;
    PolicyConfig policy;
    sim::SimConfig sim_config{};
    /// Shares one compiled route store across harnesses — e.g. every trial
    /// of an experiment cell; see routing::RouteCache for the determinism
    /// contract. Null gives the selector a private cache.
    std::shared_ptr<routing::RouteCache> route_cache{};
    /// Wires counters, the sampler, and the trace through the whole stack
    /// (network faults, flow lifecycle, queue depths, per-plane rates).
    /// Must outlive the harness; null disables instrumentation entirely.
    telemetry::Telemetry* telemetry = nullptr;
    /// Also sample the route-cache hit rate. Off by default: with a cache
    /// shared across parallel trials the hit sequence depends on thread
    /// interleaving, which would break sampler determinism — only enable
    /// this with a private (per-harness) cache.
    bool sample_route_cache = false;
    /// Cooperative-cancellation token polled by the event loop; run()/
    /// run_until() return early once it fires. Must outlive the harness.
    const util::CancelToken* cancel = nullptr;
    /// Invariant auditor wired through the event queue and every queue in
    /// the network (collected violations; see util::Audit). When null and
    /// PNET_AUDIT=1 is set, the harness owns a private fail-fast auditor so
    /// direct users (unit tests, examples) get audited too.
    util::Audit* audit = nullptr;
    /// 0 (default): the serial engine — one global event queue, exactly as
    /// before. >= 1: the plane-sharded engine (DESIGN.md §5i) with one
    /// shard per plane and min(sim_threads, planes) worker threads. Every
    /// value >= 1 produces byte-identical results: the shard layout is
    /// fixed by the topology, sim_threads only sizes the worker pool.
    int sim_threads = 0;
  };

  explicit SimHarness(const Options& options);

  [[nodiscard]] const topo::ParallelNetwork& net() const { return net_; }
  [[nodiscard]] sim::EventQueue& events() { return events_; }
  [[nodiscard]] sim::SimNetwork& network() { return network_; }
  [[nodiscard]] sim::FlowLogger& logger() { return logger_; }
  [[nodiscard]] sim::FlowFactory& factory() { return factory_; }
  [[nodiscard]] PathSelector& selector() { return selector_; }
  [[nodiscard]] const workload::FlowStarter& starter() const {
    return starter_;
  }

  /// All hosts of the network, for workload drivers.
  [[nodiscard]] std::vector<HostId> all_hosts() const {
    std::vector<HostId> hosts;
    hosts.reserve(static_cast<std::size_t>(net_.num_hosts()));
    for (int h = 0; h < net_.num_hosts(); ++h) hosts.push_back(HostId{h});
    return hosts;
  }

  /// The shard set driving a sharded run; nullptr for the serial engine.
  [[nodiscard]] sim::ShardSet* shards() { return shards_.get(); }

  /// Events dispatched across the control queue and every shard — the
  /// run's throughput numerator (equals events().dispatched() when
  /// serial).
  [[nodiscard]] std::uint64_t dispatched() const {
    return events_.dispatched() +
           (shards_ != nullptr ? shards_->dispatched() : 0);
  }

  /// Runs the event loop to completion (or to a deadline).
  void run() {
    if (shards_ != nullptr) {
      shards_->run(events_);
    } else {
      events_.run();
    }
  }
  void run_until(SimTime deadline) {
    if (shards_ != nullptr) {
      shards_->run_until(events_, deadline);
    } else {
      events_.run_until(deadline);
    }
  }

  /// Logs partial FlowRecords for flows still active — run_until stops the
  /// clock, it does not complete in-flight transfers, so without this the
  /// FlowLogger silently under-reports launched flows. Call once after the
  /// final run/run_until; returns the number of flows finalized. Also runs
  /// the end-of-trial conservation sweep when an auditor is attached —
  /// this must work after a cancelled run too, so partial results still
  /// get both their flow records and their audit.
  int finalize(SimTime at) {
    const int n = factory_.finalize(at);
    audit_check();
    return n;
  }

  /// The attached auditor — options.audit, or the private fail-fast one
  /// created under PNET_AUDIT=1; nullptr when auditing is off.
  [[nodiscard]] util::Audit* audit() { return audit_; }

  /// Conservation sweep over every queue, plus the steady-state allocation
  /// invariant: the event heap must never have regrown past the
  /// reservation made in the constructor. No-op without an auditor.
  void audit_check() {
    if (audit_ == nullptr) return;
    if (shards_ != nullptr) {
      // Violations collected on shard threads (event monotonicity, queue
      // occupancy) merge into the main auditor first, then the boundary
      // conservation + per-shard reservation sweep runs.
      shards_->collect_audit(*audit_);
      shards_->audit_check(*audit_);
    }
    network_.audit_check(*audit_);
    audit_->note_check();
    if (events_.reserved() && events_.regrowths() > 0) {
      audit_->fail("event heap regrew " +
                   std::to_string(events_.regrowths()) +
                   " times past its reservation (capacity now " +
                   std::to_string(events_.capacity()) + " entries)");
    }
  }

 private:
  void wire_telemetry(bool sample_route_cache);

  topo::ParallelNetwork net_;
  /// The control queue: flow starts, faults, health probes, telemetry. In
  /// serial mode it is also the data plane's one event queue.
  sim::EventQueue events_;
  sim::PacketPool pool_;
  sim::FlowLogger logger_;
  /// Present iff Options::sim_threads >= 1; must be constructed before
  /// network_/factory_, which bind queues and endpoints to its shards.
  std::unique_ptr<sim::ShardSet> shards_;
  sim::SimNetwork network_;
  sim::FlowFactory factory_;
  PathSelector selector_;
  workload::FlowStarter starter_;
  telemetry::Telemetry* telemetry_ = nullptr;
  std::unique_ptr<sim::TelemetryDriver> driver_;
  util::Audit* audit_ = nullptr;
  std::unique_ptr<util::Audit> owned_audit_;  // the PNET_AUDIT=1 fallback
};

}  // namespace pnet::core
