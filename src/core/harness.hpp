// One-stop simulation harness: builds the topology, the simulated network,
// the path selector, and the workload-facing flow starter in the right
// order. Benches and examples compose experiments from this plus the
// workload drivers.
#pragma once

#include <memory>

#include "core/path_selector.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "topo/parallel.hpp"
#include "workload/apps.hpp"

namespace pnet::core {

class SimHarness {
 public:
  /// `route_cache` (optional) shares one compiled route store across
  /// harnesses — e.g. every trial of an experiment cell; see
  /// routing::RouteCache for the determinism contract.
  SimHarness(const topo::NetworkSpec& spec, const PolicyConfig& policy,
             const sim::SimConfig& sim_config = {},
             std::shared_ptr<routing::RouteCache> route_cache = nullptr)
      : net_(topo::build_network(spec)),
        network_(events_, pool_, net_, sim_config),
        factory_(events_, pool_, network_, logger_),
        selector_(net_, policy, std::move(route_cache)),
        starter_(selector_.make_starter(factory_)) {}

  [[nodiscard]] const topo::ParallelNetwork& net() const { return net_; }
  [[nodiscard]] sim::EventQueue& events() { return events_; }
  [[nodiscard]] sim::SimNetwork& network() { return network_; }
  [[nodiscard]] sim::FlowLogger& logger() { return logger_; }
  [[nodiscard]] sim::FlowFactory& factory() { return factory_; }
  [[nodiscard]] PathSelector& selector() { return selector_; }
  [[nodiscard]] const workload::FlowStarter& starter() const {
    return starter_;
  }

  /// All hosts of the network, for workload drivers.
  [[nodiscard]] std::vector<HostId> all_hosts() const {
    std::vector<HostId> hosts;
    hosts.reserve(static_cast<std::size_t>(net_.num_hosts()));
    for (int h = 0; h < net_.num_hosts(); ++h) hosts.push_back(HostId{h});
    return hosts;
  }

  /// Runs the event loop to completion (or to a deadline).
  void run() { events_.run(); }
  void run_until(SimTime deadline) { events_.run_until(deadline); }

 private:
  topo::ParallelNetwork net_;
  sim::EventQueue events_;
  sim::PacketPool pool_;
  sim::FlowLogger logger_;
  sim::SimNetwork network_;
  sim::FlowFactory factory_;
  PathSelector selector_;
  workload::FlowStarter starter_;
};

}  // namespace pnet::core
