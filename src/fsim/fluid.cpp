#include "fsim/fluid.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "routing/ecmp.hpp"
#include "routing/plane_paths.hpp"

namespace pnet::fsim {

namespace {

/// A flow is done once less than half a byte of fluid remains (event times
/// are rounded up to whole picoseconds, so the residual is rounding noise).
constexpr double kEpsBytes = 0.5;
constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

struct PendingLater {
  bool operator()(const auto& a, const auto& b) const {
    return a.spec.start > b.spec.start;
  }
};

}  // namespace

namespace {

// One scheme-name table: to_string and scheme_from_string round-trip over
// it (mirrors core::kPolicyTable).
struct SchemeName {
  RouteScheme scheme;
  const char* name;
};
constexpr SchemeName kSchemeTable[] = {
    {RouteScheme::kEcmpPlaneHash, "ecmp"},
    {RouteScheme::kShortestPlane, "shortest-plane"},
    {RouteScheme::kKspMultipath, "ksp-multipath"},
};

}  // namespace

const char* to_string(RouteScheme scheme) {
  for (const SchemeName& entry : kSchemeTable) {
    if (entry.scheme == scheme) return entry.name;
  }
  return "?";
}

std::optional<RouteScheme> scheme_from_string(std::string_view name) {
  for (const SchemeName& entry : kSchemeTable) {
    if (entry.name == name) return entry.scheme;
  }
  return std::nullopt;
}

std::string scheme_names() {
  std::string out;
  for (const SchemeName& entry : kSchemeTable) {
    if (!out.empty()) out += ' ';
    out += entry.name;
  }
  return out;
}

namespace {

/// KSP tie-break jitter seed: per PAIR, not per flow, so the cache can
/// memoize the candidate pool (matching core::PathSelector's convention).
std::uint64_t ksp_seed(HostId src, HostId dst) {
  const std::uint64_t pair_key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src.v)) << 32) |
      static_cast<std::uint32_t>(dst.v);
  return mix64(pair_key ^ 0xABCD);
}

}  // namespace

std::vector<routing::Path> choose_paths(const topo::ParallelNetwork& net,
                                        const FsimConfig& config, HostId src,
                                        HostId dst, std::uint64_t flow_key) {
  switch (config.scheme) {
    case RouteScheme::kEcmpPlaneHash: {
      // Same plane-hash convention as the LP runners in bench/common.hpp,
      // so fluid, packet and LP engines agree on which plane a flow rides.
      const int plane = routing::ecmp_pick(
          mix64(flow_key * 0x9E3779B9ULL + 1), net.num_planes());
      auto paths = routing::ecmp_paths_in_plane(net, plane, src, dst,
                                                config.ecmp_path_cap);
      if (paths.empty()) return {};
      const int pick =
          routing::ecmp_pick(mix64(flow_key ^ 0x5BF03635C4ULL),
                             static_cast<int>(paths.size()));
      return {std::move(paths[static_cast<std::size_t>(pick)])};
    }
    case RouteScheme::kShortestPlane: {
      auto per_plane = routing::shortest_per_plane(net, src, dst);
      if (per_plane.empty()) return {};
      // Hash among the planes tied for fewest hops, like the packet-sim
      // selector, so homogeneous P-Nets spread instead of piling on plane 0.
      int ties = 1;
      while (ties < static_cast<int>(per_plane.size()) &&
             per_plane[static_cast<std::size_t>(ties)].hops() ==
                 per_plane.front().hops()) {
        ++ties;
      }
      const int pick =
          routing::ecmp_pick(mix64(flow_key + 0x51ED2705ULL), ties);
      return {std::move(per_plane[static_cast<std::size_t>(pick)])};
    }
    case RouteScheme::kKspMultipath:
      return routing::ksp_across_planes(net, src, dst, config.k,
                                        ksp_seed(src, dst));
  }
  return {};
}

FluidSimulator::FluidSimulator(const topo::ParallelNetwork& net,
                               FsimConfig config,
                               std::shared_ptr<routing::RouteCache> cache)
    : net_(net), config_(config), cache_(std::move(cache)), index_(net),
      alloc_(index_.capacity()),
      plane_phys_down_(static_cast<std::size_t>(net.num_planes()), false),
      plane_masked_(static_cast<std::size_t>(net.num_planes()), false) {
  if (cache_ == nullptr) cache_ = std::make_shared<routing::RouteCache>();
  cache_->bind(net_);
}

bool FluidSimulator::routing_bias_active() const {
  if (!plane_weights_.empty()) return true;
  for (bool masked : plane_masked_) {
    if (masked) return true;
  }
  return false;
}

std::size_t FluidSimulator::plane_pick_idx(const std::vector<int>& usable,
                                           std::uint64_t key) const {
  const int n = static_cast<int>(usable.size());
  if (plane_weights_.empty()) {
    return static_cast<std::size_t>(routing::ecmp_pick(key, n));
  }
  auto weight_of = [&](int plane) {
    const auto i = static_cast<std::size_t>(plane);
    return (i < plane_weights_.size() && plane_weights_[i] > 0.0)
               ? plane_weights_[i]
               : 0.0;
  };
  double total = 0.0;
  for (int plane : usable) total += weight_of(plane);
  if (total <= 0.0) {
    return static_cast<std::size_t>(routing::ecmp_pick(key, n));
  }
  // Same weighted-hash construction as core::PathSelector::plane_pick, so
  // both engines bias identically under the same controller weights.
  const double u = static_cast<double>(mix64(key) >> 11) * 0x1.0p-53 * total;
  double cum = 0.0;
  std::size_t last_positive = 0;
  for (std::size_t j = 0; j < usable.size(); ++j) {
    const double w = weight_of(usable[j]);
    if (w <= 0.0) continue;
    cum += w;
    last_positive = j;
    if (u < cum) return j;
  }
  return last_positive;
}

void FluidSimulator::set_plane_usable(int plane, bool usable) {
  plane_masked_[static_cast<std::size_t>(plane)] = !usable;
}

void FluidSimulator::set_plane_weights(std::vector<double> weights) {
  plane_weights_ = std::move(weights);
}

void FluidSimulator::set_control(SimTime cadence,
                                 std::function<void(SimTime)> tick) {
  control_cadence_ = cadence;
  control_tick_ = std::move(tick);
  next_control_ = now_ + cadence;
}

void FluidSimulator::enable_plane_accounting() {
  if (plane_bytes_.empty()) {
    plane_bytes_.assign(static_cast<std::size_t>(net_.num_planes()), 0.0);
  }
}

void FluidSimulator::fail_plane(SimTime at, SimTime until, int plane) {
  if (base_capacity_.empty()) base_capacity_ = index_.capacity();
  fabric_.push_back(FabricEvent{at, plane, true});
  if (until > at) fabric_.push_back(FabricEvent{until, plane, false});
  std::stable_sort(
      fabric_.begin() + static_cast<std::ptrdiff_t>(fabric_next_),
      fabric_.end(),
      [](const FabricEvent& a, const FabricEvent& b) { return a.at < b.at; });
}

void FluidSimulator::apply_fabric_events() {
  while (fabric_next_ < fabric_.size() && fabric_[fabric_next_].at <= now_) {
    const FabricEvent& event = fabric_[fabric_next_++];
    const auto p = static_cast<std::size_t>(event.plane);
    if (plane_phys_down_[p] == event.down) continue;  // idempotent
    plane_phys_down_[p] = event.down;
    const int begin = index_.plane_offset(event.plane);
    const int end = begin + index_.plane_link_count(event.plane);
    for (int link = begin; link < end; ++link) {
      alloc_.set_capacity(
          link, event.down ? 0.0
                           : base_capacity_[static_cast<std::size_t>(link)]);
    }
    rates_stale_ = true;
    ++events_;
    if (fault_listener_) fault_listener_(event);
  }
}

int FluidSimulator::repin_flows(int from_plane, int to_plane, int max_flows) {
  if (max_flows <= 0 || from_plane == to_plane) return 0;
  int moved = 0;
  // Creation order over the active list: deterministic, oldest flows first.
  for (auto& active : active_) {
    if (moved >= max_flows) break;
    if (active.sub_ids.size() != 1 || active.planes[0] != from_plane) {
      continue;
    }
    const HostId src = active.spec.src;
    const HostId dst = active.spec.dst;
    const routing::RouteSnapshot snapshot = cache_->lookup(
        net_, routing::RouteQuery::ecmp_plane(src, dst, to_plane,
                                              config_.ecmp_path_cap));
    if (snapshot->empty()) continue;
    // Same repin-sequence hash recipe as core::PathSelector::repin, so
    // successive repins of one pair spread over the target's path set.
    const std::uint64_t key =
        mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src.v))
               << 32) ^
              static_cast<std::uint32_t>(dst.v) ^
              (0x4EB1 + (repin_seq_++ << 17)));
    const int pick =
        routing::ecmp_pick(key, static_cast<int>(snapshot->size()));
    const routing::PathView path =
        snapshot->view(static_cast<std::size_t>(pick));
    alloc_.remove(active.sub_ids[0]);
    active.sub_ids[0] = alloc_.add(index_.to_global(path));
    active.planes[0] = to_plane;
    active.hops = path.hops();
    rates_stale_ = true;
    ++moved;
  }
  if (moved > 0) ++events_;
  return moved;
}

std::vector<int> FluidSimulator::active_subflow_planes() const {
  std::vector<int> out;
  for (const auto& active : active_) {
    for (int plane : active.planes) out.push_back(plane);
  }
  return out;
}

void FluidSimulator::route(Pending& pending, std::uint64_t flow_key) {
  // Mirrors choose_paths() exactly — candidate sets come from the cache,
  // only the per-flow picks are computed here. tests/fsim_test.cpp pins the
  // equivalence.
  const HostId src = pending.spec.src;
  const HostId dst = pending.spec.dst;
  switch (config_.scheme) {
    case RouteScheme::kEcmpPlaneHash: {
      const std::uint64_t plane_key = mix64(flow_key * 0x9E3779B9ULL + 1);
      int plane;
      if (!routing_bias_active()) {
        plane = routing::ecmp_pick(plane_key, net_.num_planes());
      } else {
        // Controller bias engaged: hash over the unmasked planes, weighted
        // when weights are set. Falls back to the unbiased pick when the
        // controller has masked everything (the flow will starve, not
        // vanish).
        std::vector<int> usable;
        for (int p = 0; p < net_.num_planes(); ++p) {
          if (!plane_masked_[static_cast<std::size_t>(p)]) usable.push_back(p);
        }
        plane = usable.empty()
                    ? routing::ecmp_pick(plane_key, net_.num_planes())
                    : usable[plane_pick_idx(usable, plane_key)];
      }
      pending.snapshot = cache_->lookup(
          net_, routing::RouteQuery::ecmp_plane(src, dst, plane,
                                                config_.ecmp_path_cap));
      if (pending.snapshot->empty()) return;
      pending.picks.push_back(static_cast<std::uint32_t>(routing::ecmp_pick(
          mix64(flow_key ^ 0x5BF03635C4ULL),
          static_cast<int>(pending.snapshot->size()))));
      return;
    }
    case RouteScheme::kShortestPlane: {
      pending.snapshot = cache_->lookup(
          net_, routing::RouteQuery::shortest_per_plane(src, dst));
      if (pending.snapshot->empty()) return;
      int ties = 1;
      while (ties < static_cast<int>(pending.snapshot->size()) &&
             pending.snapshot->view(static_cast<std::size_t>(ties)).hops() ==
                 pending.snapshot->view(0).hops()) {
        ++ties;
      }
      if (routing_bias_active()) {
        // Restrict the tie pool to unmasked planes (hop count still wins
        // over weights for this scheme); keep the unrestricted pool when
        // the controller masked every tied plane.
        std::vector<std::uint32_t> open;
        for (int i = 0; i < ties; ++i) {
          const int plane =
              pending.snapshot->view(static_cast<std::size_t>(i)).plane();
          if (!plane_masked_[static_cast<std::size_t>(plane)]) {
            open.push_back(static_cast<std::uint32_t>(i));
          }
        }
        if (!open.empty()) {
          const int pick = routing::ecmp_pick(
              mix64(flow_key + 0x51ED2705ULL),
              static_cast<int>(open.size()));
          pending.picks.push_back(open[static_cast<std::size_t>(pick)]);
          return;
        }
      }
      pending.picks.push_back(static_cast<std::uint32_t>(
          routing::ecmp_pick(mix64(flow_key + 0x51ED2705ULL), ties)));
      return;
    }
    case RouteScheme::kKspMultipath: {
      pending.snapshot = cache_->lookup(
          net_, routing::RouteQuery::ksp(src, dst, config_.k,
                                         ksp_seed(src, dst)));
      for (std::uint32_t i = 0; i < pending.snapshot->size(); ++i) {
        if (routing_bias_active() &&
            plane_masked_[static_cast<std::size_t>(
                pending.snapshot->view(i).plane())]) {
          continue;  // masked plane: drop the subflow from the set
        }
        pending.picks.push_back(i);
      }
      if (pending.picks.empty()) {
        // Every candidate masked: fall back to the full set rather than
        // silently dropping the flow.
        for (std::uint32_t i = 0; i < pending.snapshot->size(); ++i) {
          pending.picks.push_back(i);
        }
      }
      return;
    }
  }
}

void FluidSimulator::add_flow(const FlowSpec& spec) {
  Pending pending;
  pending.spec = spec;
  pending.spec.start = std::max(spec.start, now_);
  pending.key = next_key_++;
  pending.needs_route = true;  // routed at admission (see Pending::key)
  pending_.push_back(std::move(pending));
  std::push_heap(pending_.begin(), pending_.end(), PendingLater{});
}

void FluidSimulator::add_flow(const FlowSpec& spec,
                              std::vector<routing::Path> paths) {
  Pending pending;
  pending.spec = spec;
  pending.spec.start = std::max(spec.start, now_);
  pending.paths = std::move(paths);
  pending_.push_back(std::move(pending));
  std::push_heap(pending_.begin(), pending_.end(), PendingLater{});
}

void FluidSimulator::admit(Pending&& pending) {
  ++events_;
  if (pending.needs_route) {
    route(pending, pending.key);
    pending.needs_route = false;
  }
  if (!pending.routed()) {
    // Disconnected pair: nothing can flow; log a zero-duration record so
    // the caller sees the flow was not silently dropped.
    FlowResult result;
    result.src = pending.spec.src;
    result.dst = pending.spec.dst;
    result.bytes = pending.spec.bytes;
    result.start = pending.spec.start;
    result.end = now_;
    result.subflows = 0;
    results_.push_back(result);
    return;
  }
  if (static_cast<double>(pending.spec.bytes) <= kEpsBytes) {
    // Zero-byte flow: nothing to drain, done the instant it starts.
    FlowResult result;
    result.src = pending.spec.src;
    result.dst = pending.spec.dst;
    result.bytes = pending.spec.bytes;
    result.start = pending.spec.start;
    result.end = now_;
    result.hops = pending.path(0).hops();
    results_.push_back(result);
    return;
  }
  Active active;
  active.spec = pending.spec;
  active.remaining_bytes = static_cast<double>(pending.spec.bytes);
  active.hops = pending.path(0).hops();
  active.sub_ids.reserve(pending.num_paths());
  active.planes.reserve(pending.num_paths());
  for (std::size_t i = 0; i < pending.num_paths(); ++i) {
    active.sub_ids.push_back(alloc_.add(index_.to_global(pending.path(i))));
    active.planes.push_back(pending.path(i).plane());
  }
  active_.push_back(std::move(active));
  rates_stale_ = true;
  flows_started_counter_.inc();
  if (telemetry_ != nullptr) {
    PNET_TRACE_INSTANT(&telemetry_->trace, "flow_start", now_,
                       static_cast<std::int64_t>(active_.size()));
  }
}

void FluidSimulator::complete(std::size_t slot) {
  ++events_;
  Active& active = active_[slot];
  FlowResult result;
  result.src = active.spec.src;
  result.dst = active.spec.dst;
  result.bytes = active.spec.bytes;
  result.start = active.spec.start;
  result.end = now_;
  result.subflows = static_cast<int>(active.sub_ids.size());
  result.hops = active.hops;
  results_.push_back(result);
  for (int id : active.sub_ids) alloc_.remove(id);
  active_[slot] = std::move(active_.back());
  active_.pop_back();
  rates_stale_ = true;
  flows_finished_counter_.inc();
  if (telemetry_ != nullptr) {
    PNET_TRACE_COMPLETE(&telemetry_->trace, "flow", result.start, result.end,
                        result.subflows);
  }
}

void FluidSimulator::drain(SimTime dt) {
  if (dt <= 0) return;
  const double seconds = units::to_seconds(dt);
  for (auto& active : active_) {
    const double bytes = active.rate_bps * seconds / 8.0;
    const double drained = std::min(bytes, active.remaining_bytes);
    delivered_bytes_ += drained;
    active.remaining_bytes -= drained;
    if (!plane_bytes_.empty() && drained > 0.0 && active.rate_bps > 0.0) {
      // Plane attribution: split the drained bytes across subflows in
      // proportion to their allocated rates (exact for single-path flows).
      if (active.sub_ids.size() == 1) {
        plane_bytes_[static_cast<std::size_t>(active.planes[0])] += drained;
      } else {
        for (std::size_t i = 0; i < active.sub_ids.size(); ++i) {
          plane_bytes_[static_cast<std::size_t>(active.planes[i])] +=
              drained * alloc_.rate_bps(active.sub_ids[i]) / active.rate_bps;
        }
      }
    }
  }
}

void FluidSimulator::settle() {
  if (alloc_.dirty()) {
    alloc_.solve();
    rates_stale_ = true;
    // An abandoned (cancelled) solve leaves mixed-epoch rates; skip the
    // feasibility audit — the trial is being torn down, not continued.
    if (audit_ != nullptr && !(cancel_ != nullptr && cancel_->cancelled())) {
      alloc_.audit_check(*audit_);
    }
  }
  if (!rates_stale_) return;
  for (auto& active : active_) {
    double rate = 0.0;
    for (int id : active.sub_ids) rate += alloc_.rate_bps(id);
    active.rate_bps = rate;
    if (audit_ != nullptr) {
      audit_->note_check();
      if (active.remaining_bytes < 0.0) {
        audit_->fail("fluid residual negative: " +
                     std::to_string(active.remaining_bytes) + " bytes");
      }
    }
  }
  rates_stale_ = false;
}

void FluidSimulator::run_until(SimTime deadline) {
  while (true) {
    // Cancellation poll: fsim events are coarse (admissions, completions,
    // sample grid points), so a strided check per loop iteration bounds
    // cancel latency without showing up in profiles.
    if (cancel_ != nullptr && (loop_iters_++ & 63) == 0 &&
        cancel_->cancelled()) {
      break;
    }
    // Completions first (anything drained to zero by the last advance),
    // then arrivals due now, then a rate re-solve over the new flow set.
    for (std::size_t slot = 0; slot < active_.size();) {
      if (active_[slot].remaining_bytes <= kEpsBytes) {
        complete(slot);
      } else {
        ++slot;
      }
    }
    while (!pending_.empty() && pending_.front().spec.start <= now_) {
      std::pop_heap(pending_.begin(), pending_.end(), PendingLater{});
      Pending pending = std::move(pending_.back());
      pending_.pop_back();
      admit(std::move(pending));
    }
    settle();

    SimTime t_next = kNever;
    for (const auto& active : active_) {
      if (active.rate_bps <= 0.0) continue;  // starved; cannot predict
      const double dt_ps = active.remaining_bytes * 8.0 / active.rate_bps *
                           static_cast<double>(units::kSecond);
      if (dt_ps >= static_cast<double>(kNever - now_)) continue;
      const SimTime t =
          now_ + std::max<SimTime>(1, static_cast<SimTime>(std::ceil(dt_ps)));
      t_next = std::min(t_next, t);
    }
    if (!pending_.empty()) {
      t_next = std::min(t_next, std::max(pending_.front().spec.start, now_));
    }
    // Fabric events are unconditional candidates: a fully-starved
    // simulation (every flow on a failed plane) must still advance to its
    // recovery events.
    if (fabric_next_ < fabric_.size()) {
      t_next = std::min(t_next, std::max(fabric_[fabric_next_].at, now_));
    }
    // Control ticks fire while any work remains — starved flows included,
    // since the controller may be about to evacuate them.
    if (control_tick_ && (!active_.empty() || !pending_.empty())) {
      t_next = std::min(t_next, next_control_);
    }
    if (t_next == kNever) break;  // drained, or only starved flows remain
    // Sample grid points become events, so rate buckets are exact: the
    // drain below stops exactly at the grid point the sampler reads. Only
    // while real work remains (t_next != kNever) — sampling must not keep
    // a drained simulation alive.
    if (telemetry_ != nullptr && telemetry_->sampler.started()) {
      t_next = std::min(t_next, telemetry_->sampler.next_sample_at());
    }
    if (t_next > deadline) {
      drain(deadline - now_);
      now_ = std::max(now_, deadline);
      break;
    }
    drain(t_next - now_);
    now_ = t_next;
    // Fabric first, then sampling, then control: a tick at t sees the
    // plane state and telemetry as of t.
    apply_fabric_events();
    if (telemetry_ != nullptr) telemetry_->sampler.advance(now_);
    while (control_tick_ && next_control_ <= now_) {
      const SimTime tick_at = next_control_;
      next_control_ += control_cadence_;
      control_tick_(tick_at);
    }
  }
}

void FluidSimulator::run() { run_until(kNever); }

std::vector<double> FluidSimulator::fct_us() const {
  std::vector<double> out;
  out.reserve(results_.size());
  for (const auto& result : results_) out.push_back(result.fct_us());
  return out;
}

std::vector<double> FluidSimulator::active_rates_bps() const {
  std::vector<double> out;
  out.reserve(active_.size());
  for (const auto& active : active_) out.push_back(active.rate_bps);
  return out;
}

double FluidSimulator::total_rate_bps() const {
  double total = 0.0;
  for (const auto& active : active_) total += active.rate_bps;
  return total;
}

double FluidSimulator::min_rate_bps() const {
  double min = 0.0;
  bool first = true;
  for (const auto& active : active_) {
    if (first || active.rate_bps < min) min = active.rate_bps;
    first = false;
  }
  return min;
}

double FluidSimulator::plane_rate_bps(int plane) const {
  double total = 0.0;
  for (const auto& active : active_) {
    for (std::size_t i = 0; i < active.sub_ids.size(); ++i) {
      if (active.planes[i] == plane) {
        total += alloc_.rate_bps(active.sub_ids[i]);
      }
    }
  }
  return total;
}

void FluidSimulator::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry == nullptr) {
    flows_started_counter_ = {};
    flows_finished_counter_ = {};
    return;
  }
  flows_started_counter_ = telemetry->registry.counter("flows_started");
  flows_finished_counter_ = telemetry->registry.counter("flows_finished");
  telemetry::Sampler& sampler = telemetry->sampler;
  if (!sampler.enabled()) return;
  sampler.add_series(
      "goodput_bps", telemetry::Sampler::Kind::kRate,
      [this] { return delivered_bytes_; }, 8.0);
  sampler.add_series("active_flows", telemetry::Sampler::Kind::kGauge,
                     [this] { return static_cast<double>(active_.size()); });
  sampler.add_series("total_rate_bps", telemetry::Sampler::Kind::kGauge,
                     [this] { return total_rate_bps(); });
  for (int p = 0; p < net_.num_planes(); ++p) {
    sampler.add_series("plane" + std::to_string(p) + "_util_bps",
                       telemetry::Sampler::Kind::kGauge,
                       [this, p] { return plane_rate_bps(p); });
  }
  sampler.start(now_);
}

}  // namespace pnet::fsim
