// Progressive-filling max-min fair rate allocation over a fixed capacitated
// link set — the rate model of the flow-level fluid simulator (fsim).
//
// Each registered *subflow* is a fluid demand pinned to one path (a list of
// global link ids; see lp::LinkIndex). solve() water-fills: every active
// subflow's rate rises uniformly until some link saturates, the subflows
// crossing that link freeze at the bottleneck level, and the fill continues
// among the survivors. The result is the (unweighted) max-min fair
// allocation; its minimum rate equals the max-concurrent-flow LP optimum
// when each commodity has a single fixed path, which is what
// tests/fsim_test.cpp cross-validates against lp::max_concurrent_flow.
//
// The allocator is built for incremental use by an event loop: add/remove
// are O(path length) and keep per-link occupancy up to date; a solve is only
// marked necessary when the change can affect other subflows (an arriving
// or departing subflow whose links are otherwise unused takes a fast path
// that touches nothing else). A full solve costs
// O(sum of active path lengths + bottleneck levels * active links).
#pragma once

#include <cstdint>
#include <vector>

#include "util/audit.hpp"
#include "util/cancel.hpp"

namespace pnet::fsim {

class MaxMinAllocator {
 public:
  /// `capacity_bps` is indexed by global link id (lp::LinkIndex layout).
  explicit MaxMinAllocator(std::vector<double> capacity_bps);

  /// Registers a subflow pinned to `links`; returns its handle. If the
  /// subflow shares no link with any active subflow, its rate is set
  /// immediately (min capacity along the path) without dirtying the rest.
  int add(std::vector<int> links);
  /// Unregisters a subflow. Ids are recycled.
  void remove(int id);

  /// Recomputes every active rate by water-filling. No-op when no change
  /// since the last solve could have affected more than its own subflow.
  void solve();

  /// Re-capacitates one link (fsim's fault model: a failed plane's links go
  /// to 0, recovery restores them). Always dirties the allocator — subflows
  /// crossing the link freeze at rate 0 in the next water-fill and thaw
  /// when capacity returns.
  void set_capacity(int link, double bps) {
    capacity_[static_cast<std::size_t>(link)] = bps;
    dirty_ = true;
  }
  [[nodiscard]] double capacity(int link) const {
    return capacity_[static_cast<std::size_t>(link)];
  }

  /// Rate of an active subflow. Stale until solve() if dirty().
  [[nodiscard]] double rate_bps(int id) const {
    return subflows_[static_cast<std::size_t>(id)].rate_bps;
  }
  [[nodiscard]] int active() const {
    return static_cast<int>(live_ids_.size());
  }
  [[nodiscard]] bool dirty() const { return dirty_; }

  /// Diagnostics: full water-fills vs O(path) fast-path add/removes.
  [[nodiscard]] std::int64_t full_solves() const { return full_solves_; }
  [[nodiscard]] std::int64_t fast_paths() const { return fast_paths_; }

  /// Attaches a cooperative-cancellation token: solve() abandons its
  /// water-fill (leaving partial rates — the simulation is being torn
  /// down, not continued) once it fires. Polled every 16 fill rounds.
  void set_cancel(const util::CancelToken* cancel) { cancel_ = cancel; }

  /// Asserts the allocation is feasible: every subflow rate >= 0 and the
  /// summed rates on every link <= capacity within epsilon. Call after a
  /// solve(); a dirty allocator is skipped (rates are declared stale).
  void audit_check(util::Audit& audit);

 private:
  struct Subflow {
    std::vector<int> links;
    double rate_bps = 0.0;
    int live_pos = -1;  // index into live_ids_, -1 when free
  };

  std::vector<double> capacity_;
  std::vector<int> active_on_link_;  // live subflows crossing each link
  std::vector<Subflow> subflows_;
  std::vector<int> free_ids_;
  std::vector<int> live_ids_;
  bool dirty_ = false;
  std::int64_t full_solves_ = 0;
  std::int64_t fast_paths_ = 0;
  const util::CancelToken* cancel_ = nullptr;

  // Solve scratch, persistent so steady-state re-solves do not allocate.
  std::vector<int> slot_of_link_;  // link id -> dense slot (-1 idle)
  std::vector<int> slot_links_;    // dense slot -> link id
  std::vector<double> slot_rem_;   // remaining capacity per slot
  std::vector<int> slot_unfrozen_; // unfrozen subflows per slot
  std::vector<int> slot_degree_;   // adjacency offsets scratch
  std::vector<int> slot_subs_;     // concatenated subflow ids per slot
  std::vector<int> slot_offset_;
  std::vector<char> frozen_;
  std::vector<int> saturated_;     // per-round bottleneck slots
  std::vector<double> audit_load_; // audit_check scratch: per-link rate sum
};

}  // namespace pnet::fsim
