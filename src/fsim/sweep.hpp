// Multithreaded parameter-sweep runner for the fluid simulator.
//
// A FluidSimulator run is single-threaded and deterministic, so large
// sweeps parallelize across *runs*: each job is one independent simulation
// (its own topology, allocator and Rng, seeded deterministically from the
// job), workers pull jobs from a shared atomic cursor, and results land in
// a preallocated sink indexed by job order. The merged result vector is
// therefore bit-identical regardless of thread count or scheduling — the
// property tests/fsim_test.cpp locks in.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/rng.hpp"

namespace pnet::fsim {

/// Deterministic per-run seed for job `index` of a sweep: decorrelates
/// neighbouring runs while keeping the whole sweep reproducible from one
/// base seed.
[[nodiscard]] constexpr std::uint64_t sweep_seed(std::uint64_t base_seed,
                                                 std::uint64_t index) {
  return mix64(base_seed * 0x9E3779B97F4A7C15ULL + index + 1);
}

/// Runs `fn(job)` for every job on up to `threads` OS threads (0 = all
/// hardware threads) and returns the results in job order. `fn` must be
/// self-contained per job (no shared mutable state) and must not throw —
/// an escaping exception terminates the process, the honest outcome for a
/// sweep worker with nowhere to report.
template <class Job, class Fn>
auto run_sweep(const std::vector<Job>& jobs, Fn fn, int threads = 0)
    -> std::vector<std::invoke_result_t<Fn&, const Job&>> {
  using Result = std::invoke_result_t<Fn&, const Job&>;
  std::vector<Result> results(jobs.size());
  if (jobs.empty()) return results;

  unsigned workers = threads > 0
                         ? static_cast<unsigned>(threads)
                         : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, static_cast<unsigned>(jobs.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) results[i] = fn(jobs[i]);
    return results;
  }

  std::atomic<std::size_t> cursor{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      results[i] = fn(jobs[i]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  return results;
}

}  // namespace pnet::fsim
