// Multithreaded parameter-sweep runner for the fluid simulator.
//
// The machinery moved to util/parallel.hpp when exp::Runner generalized it
// to both engines; these aliases keep the original fsim spelling working
// for existing sweeps and tests. See util::parallel_map for the contract
// (self-contained jobs, results bit-identical for any thread count).
#pragma once

#include <cstdint>
#include <vector>

#include "util/parallel.hpp"

namespace pnet::fsim {

/// Deterministic per-run seed for job `index` of a sweep: decorrelates
/// neighbouring runs while keeping the whole sweep reproducible from one
/// base seed.
[[nodiscard]] constexpr std::uint64_t sweep_seed(std::uint64_t base_seed,
                                                 std::uint64_t index) {
  return util::job_seed(base_seed, index);
}

/// Runs `fn(job)` for every job on up to `threads` OS threads (0 = all
/// hardware threads) and returns the results in job order.
template <class Job, class Fn>
auto run_sweep(const std::vector<Job>& jobs, Fn fn, int threads = 0) {
  return util::parallel_map(jobs, fn, threads);
}

}  // namespace pnet::fsim
