// Flow-level fluid simulator (fsim): the scale-out companion to the packet
// simulator in src/sim.
//
// Flows are fluid demands, not packet streams. Link bandwidth is shared by
// progressive-filling max-min fairness (MaxMinAllocator), re-solved
// incrementally at every flow arrival and departure; between events every
// rate is constant, so the event loop jumps straight to the next arrival or
// the earliest predicted completion. This is the standard flow-level trick
// of the multipath-routing literature (FatPaths et al.): it gives up
// packet-level effects (slow start, queueing delay, retransmits) to gain
// 100x+ wall-clock speedups, which buys k=24/32 fat trees and millions of
// flows. Where the model diverges from src/sim and by how much is
// documented in DESIGN.md and enforced by tests/fsim_test.cpp.
//
// The simulator reuses the existing substrate end to end: topologies come
// from topo::ParallelNetwork, paths from routing:: (ECMP plane hashing, the
// shortest plane, or MPTCP-style K-shortest-paths where each path becomes
// one independent subflow demand), capacities via lp::LinkIndex, and the
// FCT vectors it emits plug into the same bench/common.hpp summaries as
// the packet engine.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fsim/max_min.hpp"
#include "lp/link_index.hpp"
#include "routing/path.hpp"
#include "routing/route_cache.hpp"
#include "telemetry/telemetry.hpp"
#include "topo/parallel.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pnet::fsim {

/// Path selection schemes mirrored from core::RoutingPolicy. Kept separate
/// so fsim does not depend on the packet-sim layers core:: pulls in.
enum class RouteScheme : std::uint8_t {
  /// Hash the flow onto one plane, then onto one equal-cost shortest path
  /// inside it (what switch ECMP does to a TCP flow). One subflow.
  kEcmpPlaneHash,
  /// Single path on the plane with the fewest hops (the low-latency
  /// interface of paper section 3.4).
  kShortestPlane,
  /// MPTCP over the K globally-shortest paths across planes: one fluid
  /// subflow per path, each an independent max-min demand (EWTCP-like
  /// uncoupled sharing; see DESIGN.md for the divergence from LIA).
  kKspMultipath,
};

[[nodiscard]] const char* to_string(RouteScheme scheme);

/// String-keyed scheme registry mirroring core::policy_from_string, so
/// benches and controller ablation configs name fluid schemes identically.
/// Unknown names return nullopt; callers fail fast listing scheme_names().
[[nodiscard]] std::optional<RouteScheme> scheme_from_string(
    std::string_view name);
/// Every registered scheme name, in enum order.
[[nodiscard]] std::string scheme_names();

struct FsimConfig {
  RouteScheme scheme = RouteScheme::kEcmpPlaneHash;
  /// Multipath degree for kKspMultipath.
  int k = 4;
  /// Cap on enumerated equal-cost paths per plane for kEcmpPlaneHash.
  int ecmp_path_cap = 64;
};

/// The paths a flow with `flow_key` uses under `config`. Exposed so tests
/// and benches can pin the exact same paths into the packet simulator or
/// the LP solver that the fluid simulator will use. The candidate sets
/// (KSP pools, ECMP enumerations, per-plane shortest) depend only on the
/// (src, dst) pair — KSP tie-break jitter is seeded per pair, not per flow —
/// so the simulator memoizes them in a routing::RouteCache; only the
/// per-flow hash picks vary with `flow_key`.
std::vector<routing::Path> choose_paths(const topo::ParallelNetwork& net,
                                        const FsimConfig& config, HostId src,
                                        HostId dst, std::uint64_t flow_key);

struct FlowSpec {
  HostId src{0};
  HostId dst{0};
  std::uint64_t bytes = 0;
  SimTime start = 0;
};

struct FlowResult {
  HostId src{0};
  HostId dst{0};
  std::uint64_t bytes = 0;
  SimTime start = 0;
  SimTime end = 0;
  int subflows = 1;
  /// Links of the first path (the latency-relevant hop count), matching
  /// sim::FlowRecord::hops.
  int hops = 0;

  [[nodiscard]] double fct_us() const {
    return units::to_microseconds(end - start);
  }
};

class FluidSimulator {
 public:
  /// `cache` (optional) shares one compiled route store with other
  /// simulators/trials; by default the simulator owns a private cache.
  explicit FluidSimulator(const topo::ParallelNetwork& net,
                          FsimConfig config = {},
                          std::shared_ptr<routing::RouteCache> cache =
                              nullptr);

  /// Queues a flow; paths are chosen by the configured scheme using a
  /// per-flow key (the flow's arrival index). `start` must be >= now().
  void add_flow(const FlowSpec& spec);
  /// Queues a flow pinned to explicit paths (one subflow per path), for
  /// cross-validation runs that must share exact paths with sim/ or lp/.
  void add_flow(const FlowSpec& spec, std::vector<routing::Path> paths);

  /// Runs until every queued flow has completed (or nothing can progress).
  void run();
  /// Runs events up to and including `deadline`, leaving rates settled.
  void run_until(SimTime deadline);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] int num_planes() const { return net_.num_planes(); }
  [[nodiscard]] const std::vector<FlowResult>& results() const {
    return results_;
  }
  /// Flow completion times in microseconds (same unit as
  /// sim::FlowLogger::fct_us) for bench/common.hpp summaries.
  [[nodiscard]] std::vector<double> fct_us() const;

  // Steady-state probes, valid after run/run_until (rates are settled).
  [[nodiscard]] int active_flows() const {
    return static_cast<int>(active_.size());
  }
  /// Per-active-flow allocated rate (subflow rates summed), bits/second.
  [[nodiscard]] std::vector<double> active_rates_bps() const;
  [[nodiscard]] double total_rate_bps() const;
  [[nodiscard]] double min_rate_bps() const;
  /// Fluid bytes drained so far across all flows, complete and partial.
  [[nodiscard]] double delivered_bytes() const { return delivered_bytes_; }
  /// Flow admissions + completions processed — the fluid engine's
  /// "events", feeding the experiment runner's events/sec metric.
  [[nodiscard]] std::uint64_t events() const { return events_; }

  /// Allocated rate summed over subflows riding `plane` (the fluid analog
  /// of the packet sim's per-plane link utilization).
  [[nodiscard]] double plane_rate_bps(int plane) const;

  /// Wires counters, the sampler, and flow trace events. Call before
  /// add_flow/run — sampler series register here and the grid starts at
  /// now(). The sampler advances at allocation-epoch boundaries (grid
  /// points become events, so rate buckets are exact); sampling stops once
  /// the simulation drains. `telemetry` must outlive the simulator; null
  /// detaches (the default zero-cost path).
  void set_telemetry(telemetry::Telemetry* telemetry);

  /// Attaches a cooperative-cancellation token: run()/run_until() return
  /// early (partially drained) once it fires, and the max-min water-fill
  /// abandons its solve. Must outlive the simulator; nullptr detaches.
  void set_cancel(const util::CancelToken* cancel) {
    cancel_ = cancel;
    alloc_.set_cancel(cancel);
  }

  /// Attaches an invariant auditor: every re-solve is checked for
  /// allocation feasibility (link load <= capacity, rates >= 0) and every
  /// active flow for a non-negative fluid residual. nullptr detaches.
  void set_audit(util::Audit* audit) { audit_ = audit; }

  [[nodiscard]] const MaxMinAllocator& allocator() const { return alloc_; }
  [[nodiscard]] const lp::LinkIndex& index() const { return index_; }
  /// Route-cache counters (hits/misses/compute time) for reports.
  [[nodiscard]] const routing::RouteCache& route_cache() const {
    return *cache_;
  }

  // --- Fabric faults (the fluid analog of sim::FaultInjector) -----------
  //
  // A failed plane has every link's capacity zeroed: subflows crossing it
  // freeze at rate 0 in the next water-fill (they starve, they are not
  // dropped) and thaw when capacity returns. Fabric events are
  // unconditional event-loop candidates, so a fully-starved simulation
  // still reaches its recovery times.

  struct FabricEvent {
    SimTime at = 0;
    int plane = -1;
    bool down = false;
  };
  using FabricListener = std::function<void(const FabricEvent&)>;

  /// Schedules plane `plane` down at `at` and (when `until` > `at`) back up
  /// at `until`; `until` <= `at` means the failure is permanent. Call
  /// before or between runs; events already in the past apply at the next
  /// loop step.
  void fail_plane(SimTime at, SimTime until, int plane);
  /// Observer fired on the simulation thread as each fabric event applies
  /// (control::LinkStateBus subscribes here). Null detaches.
  void set_fault_listener(FabricListener listener) {
    fault_listener_ = std::move(listener);
  }
  /// Physical plane state as of now() (capacity zeroed or not).
  [[nodiscard]] bool plane_down(int plane) const {
    return plane_phys_down_[static_cast<std::size_t>(plane)];
  }

  // --- Control-plane actuators (src/control) ----------------------------
  //
  // All of these are inert until first used, keeping controller-off runs
  // byte-identical to the pre-controller simulator.

  /// Masks a plane out of (or back into) new-flow routing. Only affects
  /// simulator-internal routing (route()), not the free choose_paths().
  void set_plane_usable(int plane, bool usable);
  /// Biases the kEcmpPlaneHash plane pick: plane p drawn with probability
  /// weight[p] / sum over unmasked planes. Empty restores uniform.
  void set_plane_weights(std::vector<double> weights);
  /// Moves up to `max_flows` active single-subflow flows off `from_plane`
  /// onto an equal-cost path of `to_plane` (creation order, deterministic
  /// repin-sequence path hash). Returns how many moved.
  int repin_flows(int from_plane, int to_plane, int max_flows);
  /// Installs the control loop: `tick(t)` runs at every multiple of
  /// `cadence` after now(), as long as any flow is active or pending —
  /// including fully-starved flows the controller may be about to
  /// evacuate. Decisions inside the tick see post-fabric-event state.
  void set_control(SimTime cadence, std::function<void(SimTime)> tick);
  /// Turns on per-plane delivered-byte attribution (drained bytes split
  /// across subflows proportional to their allocated rates). Off by
  /// default: the accounting adds a per-drain pass.
  void enable_plane_accounting();
  /// Bytes delivered over `plane` since enable_plane_accounting().
  [[nodiscard]] double plane_delivered_bytes(int plane) const {
    return plane_bytes_.empty()
               ? 0.0
               : plane_bytes_[static_cast<std::size_t>(plane)];
  }
  /// Plane of every active subflow, in flow-creation order (tests:
  /// "no flow pinned to a dead plane after the detection delay").
  [[nodiscard]] std::vector<int> active_subflow_planes() const;

 private:
  struct Active {
    FlowSpec spec;
    double remaining_bytes = 0.0;
    double rate_bps = 0.0;
    std::vector<int> sub_ids;
    /// Plane of each subflow, aligned with sub_ids (plane_rate_bps).
    std::vector<int> planes;
    int hops = 0;
  };
  struct Pending {
    FlowSpec spec;
    /// Routing key drawn at add_flow (insertion order); routing itself is
    /// deferred to admission so the controller's placement bias sees the
    /// fabric state at start time. With no bias and no faults the deferred
    /// route() is the same pure function of (net, key) — byte-identical to
    /// routing eagerly.
    std::uint64_t key = 0;
    bool needs_route = false;
    /// Cached routing: the interned candidate set plus the per-flow picks
    /// into it (no Path copies). Used when `snapshot` is set.
    routing::RouteSnapshot snapshot;
    std::vector<std::uint32_t> picks;
    /// Explicit-path API (cross-validation runs): owned copies.
    std::vector<routing::Path> paths;

    [[nodiscard]] bool routed() const {
      return snapshot != nullptr ? !picks.empty() : !paths.empty();
    }
    [[nodiscard]] std::size_t num_paths() const {
      return snapshot != nullptr ? picks.size() : paths.size();
    }
    [[nodiscard]] routing::PathView path(std::size_t i) const {
      return snapshot != nullptr
                 ? snapshot->view(picks[i])
                 : routing::PathView(paths[i]);
    }
  };

  void settle();  // re-solve + refresh per-flow rates if needed
  void route(Pending& pending, std::uint64_t flow_key);
  void admit(Pending&& pending);
  void complete(std::size_t slot);
  void drain(SimTime dt);
  void apply_fabric_events();  // every scheduled event with at <= now()
  /// True once any mask/weight actuator has engaged (bias path in route()).
  [[nodiscard]] bool routing_bias_active() const;
  /// Weighted (or uniform) pick of an index into `usable` for hash `key`.
  [[nodiscard]] std::size_t plane_pick_idx(const std::vector<int>& usable,
                                           std::uint64_t key) const;

  const topo::ParallelNetwork& net_;
  FsimConfig config_;
  std::shared_ptr<routing::RouteCache> cache_;
  lp::LinkIndex index_;
  MaxMinAllocator alloc_;

  std::vector<Pending> pending_;  // min-heap on spec.start
  std::vector<Active> active_;
  std::vector<FlowResult> results_;
  SimTime now_ = 0;
  std::uint64_t next_key_ = 0;
  double delivered_bytes_ = 0.0;
  std::uint64_t events_ = 0;
  bool rates_stale_ = false;
  telemetry::Telemetry* telemetry_ = nullptr;
  const util::CancelToken* cancel_ = nullptr;
  util::Audit* audit_ = nullptr;
  std::uint64_t loop_iters_ = 0;  // run_until cancel-poll stride counter
  // Fabric faults: time-sorted schedule, applied cursor, physical state.
  std::vector<FabricEvent> fabric_;
  std::size_t fabric_next_ = 0;
  std::vector<bool> plane_phys_down_;
  std::vector<double> base_capacity_;  // pre-fault capacities, lazily saved
  FabricListener fault_listener_;
  // Control-plane state (all inert until the actuators are used).
  std::vector<bool> plane_masked_;
  std::vector<double> plane_weights_;
  SimTime control_cadence_ = 0;
  SimTime next_control_ = 0;
  std::function<void(SimTime)> control_tick_;
  std::vector<double> plane_bytes_;  // empty = plane accounting disabled
  std::uint64_t repin_seq_ = 0;
  // Cached handles so the admit/complete hot paths skip name lookups.
  telemetry::Registry::Counter flows_started_counter_;
  telemetry::Registry::Counter flows_finished_counter_;
};

}  // namespace pnet::fsim
