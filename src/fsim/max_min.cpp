#include "fsim/max_min.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <string>

namespace pnet::fsim {

MaxMinAllocator::MaxMinAllocator(std::vector<double> capacity_bps)
    : capacity_(std::move(capacity_bps)),
      active_on_link_(capacity_.size(), 0),
      slot_of_link_(capacity_.size(), -1) {}

int MaxMinAllocator::add(std::vector<int> links) {
  int id;
  if (free_ids_.empty()) {
    id = static_cast<int>(subflows_.size());
    subflows_.emplace_back();
  } else {
    id = free_ids_.back();
    free_ids_.pop_back();
  }
  auto& sub = subflows_[static_cast<std::size_t>(id)];
  sub.links = std::move(links);
  sub.live_pos = static_cast<int>(live_ids_.size());
  live_ids_.push_back(id);

  bool alone = true;
  double cap = std::numeric_limits<double>::infinity();
  for (int link : sub.links) {
    if (active_on_link_[static_cast<std::size_t>(link)]++ > 0) alone = false;
    cap = std::min(cap, capacity_[static_cast<std::size_t>(link)]);
  }
  if (alone && !dirty_) {
    // No shared link: nobody else's bottleneck moved, so the new subflow
    // simply gets its path's narrowest link.
    sub.rate_bps = sub.links.empty() ? 0.0 : cap;
    ++fast_paths_;
  } else {
    dirty_ = true;
  }
  return id;
}

void MaxMinAllocator::remove(int id) {
  auto& sub = subflows_[static_cast<std::size_t>(id)];
  assert(sub.live_pos >= 0);
  bool alone = true;
  for (int link : sub.links) {
    if (--active_on_link_[static_cast<std::size_t>(link)] > 0) alone = false;
  }
  // Swap-remove from the live list, fixing the moved subflow's position.
  const int last = live_ids_.back();
  live_ids_[static_cast<std::size_t>(sub.live_pos)] = last;
  subflows_[static_cast<std::size_t>(last)].live_pos = sub.live_pos;
  live_ids_.pop_back();
  sub.live_pos = -1;
  sub.links.clear();
  sub.rate_bps = 0.0;
  free_ids_.push_back(id);
  if (alone) {
    ++fast_paths_;  // departure frees capacity nobody was contending for
  } else {
    dirty_ = true;
  }
}

void MaxMinAllocator::solve() {
  if (!dirty_) return;
  dirty_ = false;
  ++full_solves_;

  // Dense slots for the links active subflows actually touch, plus the
  // link -> subflows adjacency (counting sort over path entries).
  slot_links_.clear();
  slot_rem_.clear();
  slot_degree_.clear();
  for (int id : live_ids_) {
    for (int link : subflows_[static_cast<std::size_t>(id)].links) {
      auto& slot = slot_of_link_[static_cast<std::size_t>(link)];
      if (slot < 0) {
        slot = static_cast<int>(slot_links_.size());
        slot_links_.push_back(link);
        slot_rem_.push_back(capacity_[static_cast<std::size_t>(link)]);
        slot_degree_.push_back(0);
      }
      ++slot_degree_[static_cast<std::size_t>(slot)];
    }
  }
  const std::size_t nslots = slot_links_.size();
  slot_offset_.assign(nslots + 1, 0);
  for (std::size_t s = 0; s < nslots; ++s) {
    slot_offset_[s + 1] = slot_offset_[s] + slot_degree_[s];
  }
  slot_subs_.resize(static_cast<std::size_t>(slot_offset_[nslots]));
  slot_unfrozen_.assign(nslots, 0);
  for (int id : live_ids_) {
    for (int link : subflows_[static_cast<std::size_t>(id)].links) {
      const auto slot = static_cast<std::size_t>(
          slot_of_link_[static_cast<std::size_t>(link)]);
      slot_subs_[static_cast<std::size_t>(slot_offset_[slot]) +
                 static_cast<std::size_t>(slot_unfrozen_[slot]++)] = id;
    }
  }

  frozen_.assign(subflows_.size(), 0);
  std::size_t remaining = live_ids_.size();

  // Water-fill. Each round finds the lowest fair-share level among links
  // that still carry unfrozen subflows and freezes exactly those subflows.
  // The level is monotonically non-decreasing across rounds, so a single
  // saturated-slot snapshot per round is sufficient.
  std::vector<int>& scan = saturated_;  // reused scratch
  std::uint64_t rounds = 0;
  while (remaining > 0) {
    if (cancel_ != nullptr && (rounds++ & 15) == 0 && cancel_->cancelled()) {
      break;  // partial rates are fine: the trial is being abandoned
    }
    double level = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < nslots; ++s) {
      if (slot_unfrozen_[s] <= 0) continue;
      const double share = std::max(slot_rem_[s], 0.0) /
                           static_cast<double>(slot_unfrozen_[s]);
      level = std::min(level, share);
    }
    if (!std::isfinite(level)) break;  // no constrained subflow left
    scan.clear();
    const double cutoff = level + level * 1e-12 +
                          std::numeric_limits<double>::min();
    for (std::size_t s = 0; s < nslots; ++s) {
      if (slot_unfrozen_[s] <= 0) continue;
      const double share = std::max(slot_rem_[s], 0.0) /
                           static_cast<double>(slot_unfrozen_[s]);
      if (share <= cutoff) scan.push_back(static_cast<int>(s));
    }
    for (int s : scan) {
      const auto begin = static_cast<std::size_t>(slot_offset_[
          static_cast<std::size_t>(s)]);
      const auto end = static_cast<std::size_t>(slot_offset_[
          static_cast<std::size_t>(s) + 1]);
      for (std::size_t i = begin; i < end; ++i) {
        const int id = slot_subs_[i];
        if (frozen_[static_cast<std::size_t>(id)]) continue;
        frozen_[static_cast<std::size_t>(id)] = 1;
        auto& sub = subflows_[static_cast<std::size_t>(id)];
        sub.rate_bps = level;
        --remaining;
        for (int link : sub.links) {
          const auto slot = static_cast<std::size_t>(
              slot_of_link_[static_cast<std::size_t>(link)]);
          slot_rem_[slot] -= level;
          --slot_unfrozen_[slot];
        }
      }
    }
  }

  for (std::size_t s = 0; s < nslots; ++s) {
    slot_of_link_[static_cast<std::size_t>(slot_links_[s])] = -1;
  }
}

void MaxMinAllocator::audit_check(util::Audit& audit) {
  if (dirty_) return;  // rates are declared stale until the next solve()
  audit.note_check();
  audit_load_.assign(capacity_.size(), 0.0);
  for (int id : live_ids_) {
    const auto& sub = subflows_[static_cast<std::size_t>(id)];
    if (sub.rate_bps < 0.0) {
      audit.fail("max-min rate negative: subflow " + std::to_string(id) +
                 " rate=" + std::to_string(sub.rate_bps) + " bps");
    }
    for (int link : sub.links) {
      audit_load_[static_cast<std::size_t>(link)] += sub.rate_bps;
    }
  }
  for (std::size_t l = 0; l < capacity_.size(); ++l) {
    // Relative epsilon absorbs water-fill rounding; the absolute floor
    // covers zero-capacity links.
    const double tolerance = capacity_[l] * 1e-6 + 1e-3;
    if (audit_load_[l] > capacity_[l] + tolerance) {
      audit.fail("max-min allocation above capacity on link " +
                 std::to_string(l) + ": " + std::to_string(audit_load_[l]) +
                 " > " + std::to_string(capacity_[l]) + " bps");
    }
  }
}

}  // namespace pnet::fsim
