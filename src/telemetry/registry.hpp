// Cheap counters and gauges for simulation telemetry.
//
// A Registry interns named metrics once at wiring time and hands out small
// handles the hot paths bump. Counters are sharded across cache-line-padded
// atomic cells — concurrent trials (or a future multi-threaded engine) can
// increment the same logical counter without bouncing one cache line — and
// a deterministic snapshot/merge API folds shards back into name -> value
// maps for reports. Gauges are single last-write-wins slots (simulation
// state is single-threaded per trial; gauges record "current value", not a
// sum, so sharding them would have no meaning).
//
// Thread-safety contract: counter()/gauge() registration is NOT thread-safe
// (register during wiring, before traffic runs); Counter::add / Gauge::set
// are safe from any thread; snapshot() gives exact totals once writer
// threads are quiesced (relaxed atomics — no ordering is implied between
// metrics).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>

namespace pnet::telemetry {

class Registry {
 public:
  /// Shards per counter. 16 matches routing::RouteCache's shard count —
  /// enough that a handful of worker threads rarely collide.
  static constexpr std::size_t kShards = 16;

  struct alignas(64) ShardCell {
    std::atomic<std::uint64_t> value{0};
  };

  /// Copyable handle to one sharded counter. A default-constructed handle
  /// is inert: add() on it is a no-op, so call sites need no null checks.
  class Counter {
   public:
    Counter() = default;
    void add(std::uint64_t delta) const {
      if (cells_ == nullptr) return;
      cells_[shard_index()].value.fetch_add(delta,
                                            std::memory_order_relaxed);
    }
    void inc() const { add(1); }
    [[nodiscard]] explicit operator bool() const {
      return cells_ != nullptr;
    }

   private:
    friend class Registry;
    explicit Counter(ShardCell* cells) : cells_(cells) {}
    ShardCell* cells_ = nullptr;
  };

  /// Copyable handle to one gauge slot (last write wins).
  class Gauge {
   public:
    Gauge() = default;
    void set(double v) const {
      if (slot_ != nullptr) slot_->store(v, std::memory_order_relaxed);
    }
    [[nodiscard]] explicit operator bool() const { return slot_ != nullptr; }

   private:
    friend class Registry;
    explicit Gauge(std::atomic<double>* slot) : slot_(slot) {}
    std::atomic<double>* slot_ = nullptr;
  };

  /// Interns (or finds) the counter named `name`. Handles stay valid for
  /// the registry's lifetime.
  Counter counter(std::string_view name);
  /// Interns (or finds) the gauge named `name`.
  Gauge gauge(std::string_view name);

  [[nodiscard]] std::size_t num_counters() const { return counters_.size(); }
  [[nodiscard]] std::size_t num_gauges() const { return gauges_.size(); }

  /// A point-in-time read of every metric, shards summed. std::map so
  /// iteration (and hence any serialization) is deterministic by name.
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;

    /// Folds `other` in: counters add; gauges take the other's value when
    /// present (right operand wins, which keeps merge associative).
    Snapshot& merge(const Snapshot& other);
  };

  [[nodiscard]] Snapshot snapshot() const;

 private:
  /// Which shard this thread writes. Threads are assigned round-robin on
  /// first use, so up to kShards writers never share a cell.
  static std::size_t shard_index();

  struct CounterSlot {
    std::string name;
    ShardCell cells[kShards];
  };
  struct GaugeSlot {
    std::string name;
    std::atomic<double> value{0.0};
  };

  // Deques: slots must not move once handed out as handles.
  std::deque<CounterSlot> counters_;
  std::deque<GaugeSlot> gauges_;
  std::map<std::string, CounterSlot*, std::less<>> counter_index_;
  std::map<std::string, GaugeSlot*, std::less<>> gauge_index_;
};

}  // namespace pnet::telemetry
