// Umbrella header and the per-run telemetry bundle.
//
// One Telemetry object travels with one simulation run (one SimHarness or
// FluidSimulator): a Registry of counters/gauges, a Sampler of time series
// on a shared grid, and a Trace of span/instant events. Engines create it
// from a Config (typically parsed from --sample-every / --trace flags by
// bench/common.hpp), wire it through the simulators, and fold the results
// into the experiment report (exp::fold_telemetry).
//
// Everything degrades to near-zero cost when off: a null Telemetry pointer
// skips all wiring, the PNET_TRACE_* macros test a pointer (or compile
// out), and sampling only costs anything at grid points.
#pragma once

#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/trace.hpp"

namespace pnet::telemetry {

/// What to collect. Default-constructed = everything off.
struct Config {
  /// Sampler grid spacing in simulated time; <= 0 disables sampling.
  SimTime sample_every = 0;
  /// Sampler points per series before downsampling halves the buffers.
  std::size_t sample_capacity = 512;
  /// Record trace events.
  bool trace = false;

  [[nodiscard]] bool enabled() const { return sample_every > 0 || trace; }
};

class Telemetry {
 public:
  explicit Telemetry(const Config& config = {})
      : config(config),
        sampler({config.sample_every, config.sample_capacity}),
        trace(config.trace) {}

  // Not copyable/movable: handles and probes point into the components.
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  const Config config;
  Registry registry;
  Sampler sampler;
  Trace trace;
};

}  // namespace pnet::telemetry
