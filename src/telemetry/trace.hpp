// Span/instant event tracing with Chrome trace_event JSON and compact
// binary export.
//
// A Trace is an append-only in-memory event buffer with an interned name
// table: recording an event is a hash lookup plus a vector push, cheap
// enough for flow-level events (starts, finishes, repaths, cable faults,
// cache invalidations) but not meant for per-packet use. Export to the
// Chrome trace_event JSON array format (load in chrome://tracing or
// Perfetto) or to a compact length-prefixed binary blob for offline
// tooling.
//
// Cost when off: sites record through the PNET_TRACE_* macros, which are
//   * compiled out entirely (zero code) with -DPNET_TELEMETRY_DISABLE_TRACE;
//   * a null-pointer test when no trace is wired (the default), so the
//     disabled path stays within the bench_micro_sim overhead budget.
// Timestamps are SimTime picoseconds; JSON emits microseconds (the
// trace_event unit) with exact decimal conversion — no double formatting —
// so exports are byte-deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace pnet::telemetry {

class Trace {
 public:
  enum class Phase : char {
    kInstant = 'i',
    kComplete = 'X',  // a span: ts + dur
  };

  struct Event {
    std::uint32_t name = 0;  // index into names()
    Phase phase = Phase::kInstant;
    bool has_arg = false;
    SimTime ts = 0;
    SimTime dur = 0;         // kComplete only
    std::int64_t arg = 0;    // optional numeric payload (flow id, plane...)

    friend bool operator==(const Event&, const Event&) = default;
  };

  explicit Trace(bool enabled = true) : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const { return enabled_; }

  void instant(std::string_view name, SimTime ts);
  void instant(std::string_view name, SimTime ts, std::int64_t arg);
  void complete(std::string_view name, SimTime start, SimTime end);
  void complete(std::string_view name, SimTime start, SimTime end,
                std::int64_t arg);

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }

  /// Appends another trace's events (names re-interned). For merging
  /// per-trial traces into one export.
  void append(const Trace& other);

  /// Appends this trace's events as Chrome trace_event objects to a JSON
  /// array under construction. `first` tracks whether a comma is due and
  /// is updated; pid/tid label the process/thread lanes in the viewer.
  void append_chrome_json(std::string& out, int pid, int tid,
                          bool& first) const;
  /// A complete single-trace Chrome JSON document:
  /// {"traceEvents": [...], "displayTimeUnit": "ms"}.
  [[nodiscard]] std::string chrome_json() const;

  /// Compact binary export: magic + version + name table + fixed-width
  /// little-endian event records. parse_binary() round-trips it.
  void append_binary(std::string& out) const;
  static bool parse_binary(std::string_view in, Trace& out);

  static constexpr std::uint32_t kBinaryMagic = 0x50545243u;  // "CRTP"
  static constexpr std::uint32_t kBinaryVersion = 1;

 private:
  std::uint32_t intern(std::string_view name);

  bool enabled_;
  std::vector<Event> events_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> name_ids_;
};

/// One Chrome metadata event naming a pid lane, appended to an open array.
void append_chrome_process_name(std::string& out, int pid,
                                std::string_view name, bool& first);

// Recording macros: null-safe, and compiled to nothing with
// -DPNET_TELEMETRY_DISABLE_TRACE (the zero-cost switch for builds that
// must not carry tracing at all).
#if defined(PNET_TELEMETRY_DISABLE_TRACE)
#define PNET_TRACE_INSTANT(trace, ...) ((void)0)
#define PNET_TRACE_COMPLETE(trace, ...) ((void)0)
#else
#define PNET_TRACE_INSTANT(trace, ...)                                \
  do {                                                                \
    ::pnet::telemetry::Trace* pnet_trace_tmp_ = (trace);              \
    if (pnet_trace_tmp_ != nullptr && pnet_trace_tmp_->enabled()) {   \
      pnet_trace_tmp_->instant(__VA_ARGS__);                          \
    }                                                                 \
  } while (0)
#define PNET_TRACE_COMPLETE(trace, ...)                               \
  do {                                                                \
    ::pnet::telemetry::Trace* pnet_trace_tmp_ = (trace);              \
    if (pnet_trace_tmp_ != nullptr && pnet_trace_tmp_->enabled()) {   \
      pnet_trace_tmp_->complete(__VA_ARGS__);                         \
    }                                                                 \
  } while (0)
#endif

}  // namespace pnet::telemetry
