// Periodic time-series capture with bounded memory.
//
// A Sampler owns one shared sampling grid (every `interval` of simulated
// time from start()) and any number of named series over it. Two kinds:
//   kGauge — the probe's value at the grid point (queue depth, active
//            flows, an allocator rate);
//   kRate  — the probe is a cumulative counter; the series holds
//            delta * scale / interval_seconds per grid bucket (goodput in
//            bits/s from a delivered-bytes counter with scale = 8).
//
// Memory is bounded by pairwise downsampling: when the buffers reach
// `capacity` points, adjacent pairs merge (bucket value = pair mean, bucket
// end = the later end) and the grid interval doubles, so a run of any
// length costs O(capacity) per series and the series always covers the
// whole run. Mean-preserving for gauges; integral-preserving for rates
// (equal-width buckets make the pair mean the merged bucket's true rate).
//
// Who advances the grid: the packet engine schedules a
// sim::TelemetryDriver on the EventQueue; fsim advances inside its
// allocation-epoch loop (grid points become epoch boundaries, so rates are
// exact). Everything here is deterministic — a pure function of the probe
// values at grid points — which is what lets sampler series ride in the
// bit-identical part of experiment reports.
//
// Downsampling contract (what readers may rely on):
//   * Bucket i covers the half-open window (times()[i] - interval(),
//     times()[i]] — bucket END times are stored, never starts.
//   * All series share one grid; after any number of downsampling rounds
//     every live bucket still has the same width (`interval()`), so
//     cross-series comparisons at a bucket index are always apples to
//     apples.
//   * A merge replaces adjacent pairs with their mean and keeps the later
//     end time. Gauge means stay means; rate means stay exact rates over
//     the doubled window (equal-width buckets). Readers must therefore
//     treat a bucket value as an average over (t_end - interval(), t_end],
//     not an instantaneous point — a merge can retroactively widen buckets
//     a reader saw before.
//   * Bucket end times are strictly increasing; interval() only ever grows.
//
// Reading: consumers on the simulation thread (e.g. the control plane)
// should use read() — bounded iteration over the most recent samples of
// one series, filtered to buckets that end after a watermark. Direct
// buffer access via times()/values()/find() is deprecated for periodic
// consumers: those accessors expose the whole (possibly re-merged) history
// and invite O(run-length) rescans; they remain supported only for
// end-of-run serialization (report folding), which wants the full buffer.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace pnet::telemetry {

class Sampler {
 public:
  /// Returned by next_sample_at() when disabled or not started.
  static constexpr SimTime kNoSample = std::numeric_limits<SimTime>::max();

  struct Config {
    /// Grid spacing; <= 0 disables the sampler entirely.
    SimTime interval = 0;
    /// Points per series before pairwise downsampling halves the buffers
    /// (rounded down to even, minimum 2).
    std::size_t capacity = 512;
  };

  enum class Kind : std::uint8_t { kGauge, kRate };

  /// Reads one probe value; called only at grid points, on the simulation
  /// thread.
  using Probe = std::function<double()>;

  // (Two constructors instead of one defaulted argument: a nested class's
  // member initializers are not usable in a default argument until the
  // enclosing class is complete.)
  Sampler() : Sampler(Config{}) {}
  explicit Sampler(Config config);

  [[nodiscard]] bool enabled() const { return config_.interval > 0; }
  [[nodiscard]] bool started() const { return started_; }

  /// Registers a series; call before start(). `scale` multiplies the
  /// per-second delta of kRate series (8.0 turns bytes into bits/s) and is
  /// ignored for gauges. Returns the series index.
  std::size_t add_series(std::string name, Kind kind, Probe probe,
                         double scale = 1.0);

  /// Baselines rate series and arms the grid: the first capture happens at
  /// `at` + interval.
  void start(SimTime at);

  /// The next grid point, or kNoSample when disabled/not started.
  [[nodiscard]] SimTime next_sample_at() const {
    return started_ ? next_ : kNoSample;
  }

  /// Captures every grid point <= `now` (one bucket per point, in order).
  void advance(SimTime now);

  /// Bucket end times, shared by all series. Bucket i covers
  /// (times()[i] - interval(), times()[i]].
  [[nodiscard]] const std::vector<SimTime>& times() const { return times_; }
  /// Current grid spacing: config interval x 2^(downsampling rounds).
  [[nodiscard]] SimTime interval() const { return interval_; }
  [[nodiscard]] std::size_t num_series() const { return series_.size(); }
  [[nodiscard]] const std::string& name(std::size_t i) const {
    return series_[i].name;
  }
  [[nodiscard]] Kind kind(std::size_t i) const { return series_[i].kind; }
  [[nodiscard]] const std::vector<double>& values(std::size_t i) const {
    return series_[i].values;
  }
  /// The series named `name`, or nullptr.
  ///
  /// Deprecated for periodic consumers (control loops): use read() — it is
  /// bounded and watermark-aware. find()/values()/times() stay available
  /// for end-of-run serialization only.
  [[nodiscard]] const std::vector<double>* find(std::string_view name) const;

  /// One bucket handed to a read() visitor. `t_end` is the bucket end on
  /// the shared grid; the bucket covers (t_end - interval(), t_end].
  struct Sample {
    SimTime t_end = 0;
    double value = 0.0;
  };

  using SampleVisitor = std::function<void(const Sample&)>;

  /// Bounded pull over one series: visits, oldest first, the buckets whose
  /// end time is strictly after `after`, keeping only the `max_points` most
  /// recent of them. Returns the number of buckets visited (0 for an
  /// unknown series, a never-started sampler, or when nothing new landed
  /// past the watermark). Because downsampling can merge a bucket the
  /// caller already saw into a later-ending one, callers must treat
  /// revisited windows as replacements, not duplicates; using the last
  /// visited `t_end` as the next `after` is the intended idiom and never
  /// re-delivers an unmerged bucket.
  std::size_t read(std::string_view name, SimTime after,
                   std::size_t max_points, const SampleVisitor& visit) const;

  /// Same, by series index (no name lookup on the hot path).
  std::size_t read(std::size_t series, SimTime after, std::size_t max_points,
                   const SampleVisitor& visit) const;

 private:
  void capture(SimTime t);
  void downsample();

  struct Series {
    std::string name;
    Kind kind = Kind::kGauge;
    Probe probe;
    double scale = 1.0;
    double last_raw = 0.0;  // kRate: probe value at the previous grid point
    std::vector<double> values;
  };

  Config config_;
  SimTime interval_ = 0;
  bool started_ = false;
  SimTime next_ = 0;
  std::vector<SimTime> times_;
  std::vector<Series> series_;
};

}  // namespace pnet::telemetry
