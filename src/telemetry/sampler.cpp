#include "telemetry/sampler.hpp"

#include <algorithm>
#include <cassert>

namespace pnet::telemetry {

Sampler::Sampler(Config config) : config_(config) {
  if (config_.capacity < 2) config_.capacity = 2;
  config_.capacity &= ~std::size_t{1};  // pairwise merge needs even
  interval_ = config_.interval;
}

std::size_t Sampler::add_series(std::string name, Kind kind, Probe probe,
                                double scale) {
  assert(!started_ && "register series before start()");
  Series series;
  series.name = std::move(name);
  series.kind = kind;
  series.probe = std::move(probe);
  series.scale = scale;
  series_.push_back(std::move(series));
  return series_.size() - 1;
}

void Sampler::start(SimTime at) {
  if (!enabled() || started_) return;
  for (Series& series : series_) {
    if (series.kind == Kind::kRate) series.last_raw = series.probe();
    series.values.reserve(config_.capacity);
  }
  times_.reserve(config_.capacity);
  next_ = at + interval_;
  started_ = true;
}

void Sampler::advance(SimTime now) {
  if (!started_) return;
  while (next_ <= now) capture(next_);
}

void Sampler::capture(SimTime t) {
  times_.push_back(t);
  const double seconds = units::to_seconds(interval_);
  for (Series& series : series_) {
    double v = series.probe();
    if (series.kind == Kind::kRate) {
      const double delta = v - series.last_raw;
      series.last_raw = v;
      v = delta * series.scale / seconds;
    }
    series.values.push_back(v);
  }
  if (times_.size() >= config_.capacity) downsample();
  next_ = t + interval_;
}

void Sampler::downsample() {
  const std::size_t half = times_.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    times_[i] = times_[2 * i + 1];  // merged bucket ends where the pair did
  }
  times_.resize(half);
  for (Series& series : series_) {
    auto& v = series.values;
    for (std::size_t i = 0; i < half; ++i) {
      v[i] = (v[2 * i] + v[2 * i + 1]) / 2.0;
    }
    v.resize(half);
  }
  interval_ *= 2;
}

const std::vector<double>* Sampler::find(std::string_view name) const {
  for (const Series& series : series_) {
    if (series.name == name) return &series.values;
  }
  return nullptr;
}

std::size_t Sampler::read(std::string_view name, SimTime after,
                          std::size_t max_points,
                          const SampleVisitor& visit) const {
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (series_[i].name == name) return read(i, after, max_points, visit);
  }
  return 0;
}

std::size_t Sampler::read(std::size_t series, SimTime after,
                          std::size_t max_points,
                          const SampleVisitor& visit) const {
  if (series >= series_.size() || max_points == 0) return 0;
  // End times are strictly increasing: binary-search the watermark, then
  // clamp to the `max_points` most recent buckets past it.
  const auto begin_it =
      std::upper_bound(times_.begin(), times_.end(), after);
  std::size_t begin = static_cast<std::size_t>(begin_it - times_.begin());
  const std::size_t available = times_.size() - begin;
  if (available > max_points) begin = times_.size() - max_points;
  const std::vector<double>& values = series_[series].values;
  for (std::size_t i = begin; i < times_.size(); ++i) {
    visit(Sample{times_[i], values[i]});
  }
  return times_.size() - begin;
}

}  // namespace pnet::telemetry
