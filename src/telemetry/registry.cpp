#include "telemetry/registry.hpp"

namespace pnet::telemetry {

std::size_t Registry::shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

Registry::Counter Registry::counter(std::string_view name) {
  if (const auto it = counter_index_.find(name);
      it != counter_index_.end()) {
    return Counter(it->second->cells);
  }
  counters_.emplace_back();
  CounterSlot& slot = counters_.back();
  slot.name = std::string(name);
  counter_index_.emplace(slot.name, &slot);
  return Counter(slot.cells);
}

Registry::Gauge Registry::gauge(std::string_view name) {
  if (const auto it = gauge_index_.find(name); it != gauge_index_.end()) {
    return Gauge(&it->second->value);
  }
  gauges_.emplace_back();
  GaugeSlot& slot = gauges_.back();
  slot.name = std::string(name);
  gauge_index_.emplace(slot.name, &slot);
  return Gauge(&slot.value);
}

Registry::Snapshot& Registry::Snapshot::merge(const Snapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] = value;
  return *this;
}

Registry::Snapshot Registry::snapshot() const {
  Snapshot snap;
  for (const auto& slot : counters_) {
    std::uint64_t total = 0;
    for (const auto& cell : slot.cells) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    snap.counters[slot.name] = total;
  }
  for (const auto& slot : gauges_) {
    snap.gauges[slot.name] = slot.value.load(std::memory_order_relaxed);
  }
  return snap;
}

}  // namespace pnet::telemetry
