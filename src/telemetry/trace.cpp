#include "telemetry/trace.hpp"

#include <cstdio>
#include <cstring>

namespace pnet::telemetry {

namespace {

/// Picoseconds -> the trace_event microsecond unit, as an exact decimal
/// ("12.000345") — integer arithmetic, so exports are byte-deterministic.
void append_us(std::string& out, SimTime ps) {
  const bool negative = ps < 0;
  const std::uint64_t abs =
      negative ? 0ull - static_cast<std::uint64_t>(ps)
               : static_cast<std::uint64_t>(ps);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%llu.%06llu", negative ? "-" : "",
                static_cast<unsigned long long>(abs / 1'000'000ull),
                static_cast<unsigned long long>(abs % 1'000'000ull));
  out += buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_int(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

// Little-endian fixed-width serialization, independent of host layout.
template <class T>
void put(std::string& out, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out += static_cast<char>((static_cast<std::uint64_t>(v) >> (8 * i)) &
                             0xFF);
  }
}

template <class T>
bool get(std::string_view& in, T& v) {
  if (in.size() < sizeof(T)) return false;
  std::uint64_t raw = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    raw |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[i]))
           << (8 * i);
  }
  v = static_cast<T>(raw);
  in.remove_prefix(sizeof(T));
  return true;
}

}  // namespace

std::uint32_t Trace::intern(std::string_view name) {
  if (const auto it = name_ids_.find(std::string(name));
      it != name_ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

void Trace::instant(std::string_view name, SimTime ts) {
  if (!enabled_) return;
  events_.push_back({intern(name), Phase::kInstant, false, ts, 0, 0});
}

void Trace::instant(std::string_view name, SimTime ts, std::int64_t arg) {
  if (!enabled_) return;
  events_.push_back({intern(name), Phase::kInstant, true, ts, 0, arg});
}

void Trace::complete(std::string_view name, SimTime start, SimTime end) {
  if (!enabled_) return;
  events_.push_back(
      {intern(name), Phase::kComplete, false, start, end - start, 0});
}

void Trace::complete(std::string_view name, SimTime start, SimTime end,
                     std::int64_t arg) {
  if (!enabled_) return;
  events_.push_back(
      {intern(name), Phase::kComplete, true, start, end - start, arg});
}

void Trace::append(const Trace& other) {
  for (const Event& event : other.events_) {
    Event copy = event;
    copy.name = intern(other.names_[event.name]);
    events_.push_back(copy);
  }
}

void Trace::append_chrome_json(std::string& out, int pid, int tid,
                               bool& first) const {
  for (const Event& event : events_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":";
    append_json_string(out, names_[event.name]);
    out += ",\"ph\":\"";
    out += static_cast<char>(event.phase);
    out += "\",\"ts\":";
    append_us(out, event.ts);
    if (event.phase == Phase::kComplete) {
      out += ",\"dur\":";
      append_us(out, event.dur);
    }
    out += ",\"pid\":";
    append_int(out, pid);
    out += ",\"tid\":";
    append_int(out, tid);
    if (event.phase == Phase::kInstant) out += ",\"s\":\"t\"";
    if (event.has_arg) {
      out += ",\"args\":{\"v\":";
      append_int(out, event.arg);
      out += "}";
    }
    out += "}";
  }
}

std::string Trace::chrome_json() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  append_chrome_json(out, 0, 0, first);
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void append_chrome_process_name(std::string& out, int pid,
                                std::string_view name, bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
  append_int(out, pid);
  out += ",\"tid\":0,\"args\":{\"name\":";
  append_json_string(out, name);
  out += "}}";
}

void Trace::append_binary(std::string& out) const {
  put<std::uint32_t>(out, kBinaryMagic);
  put<std::uint32_t>(out, kBinaryVersion);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(names_.size()));
  for (const std::string& name : names_) {
    put<std::uint32_t>(out, static_cast<std::uint32_t>(name.size()));
    out += name;
  }
  put<std::uint64_t>(out, static_cast<std::uint64_t>(events_.size()));
  for (const Event& event : events_) {
    put<std::uint32_t>(out, event.name);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(event.phase));
    put<std::uint8_t>(out, event.has_arg ? 1 : 0);
    put<std::int64_t>(out, event.ts);
    put<std::int64_t>(out, event.dur);
    put<std::int64_t>(out, event.arg);
  }
}

bool Trace::parse_binary(std::string_view in, Trace& out) {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t num_names = 0;
  if (!get(in, magic) || magic != kBinaryMagic) return false;
  if (!get(in, version) || version != kBinaryVersion) return false;
  if (!get(in, num_names)) return false;
  std::vector<std::string> names;
  names.reserve(num_names);
  for (std::uint32_t i = 0; i < num_names; ++i) {
    std::uint32_t len = 0;
    if (!get(in, len) || in.size() < len) return false;
    names.emplace_back(in.substr(0, len));
    in.remove_prefix(len);
  }
  std::uint64_t num_events = 0;
  if (!get(in, num_events)) return false;
  for (std::uint64_t i = 0; i < num_events; ++i) {
    std::uint32_t name = 0;
    std::uint8_t phase = 0;
    std::uint8_t has_arg = 0;
    std::int64_t ts = 0;
    std::int64_t dur = 0;
    std::int64_t arg = 0;
    if (!get(in, name) || !get(in, phase) || !get(in, has_arg) ||
        !get(in, ts) || !get(in, dur) || !get(in, arg)) {
      return false;
    }
    if (name >= names.size()) return false;
    out.events_.push_back({out.intern(names[name]),
                           static_cast<Phase>(phase), has_arg != 0, ts, dur,
                           arg});
  }
  return in.empty();
}

}  // namespace pnet::telemetry
