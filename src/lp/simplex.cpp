#include "lp/simplex.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace pnet::lp {

namespace {
constexpr double kEps = 1e-9;
}

std::optional<SimplexSolution> solve_simplex(const LinearProgram& lp) {
  const std::size_t n = lp.objective.size();
  const std::size_t m = lp.rows.size();
  assert(lp.rhs.size() == m);
  for (double b : lp.rhs) {
    if (b < -kEps) {
      throw std::invalid_argument("solve_simplex requires b >= 0");
    }
  }

  // Tableau with slack variables: columns [x (n), slack (m), rhs].
  const std::size_t cols = n + m + 1;
  std::vector<std::vector<double>> t(m + 1,
                                     std::vector<double>(cols, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    assert(lp.rows[i].size() == n);
    for (std::size_t j = 0; j < n; ++j) t[i][j] = lp.rows[i][j];
    t[i][n + i] = 1.0;
    t[i][cols - 1] = lp.rhs[i];
  }
  // Objective row holds -c (we maximize).
  for (std::size_t j = 0; j < n; ++j) t[m][j] = -lp.objective[j];

  std::vector<std::size_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) basis[i] = n + i;

  while (true) {
    // Bland's rule: entering variable = lowest-index negative cost.
    std::size_t pivot_col = cols;
    for (std::size_t j = 0; j + 1 < cols; ++j) {
      if (t[m][j] < -kEps) {
        pivot_col = j;
        break;
      }
    }
    if (pivot_col == cols) break;  // optimal

    // Ratio test with Bland tie-break on basis index.
    std::size_t pivot_row = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      if (t[i][pivot_col] > kEps) {
        const double ratio = t[i][cols - 1] / t[i][pivot_col];
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (pivot_row == m || basis[i] < basis[pivot_row]))) {
          best_ratio = ratio;
          pivot_row = i;
        }
      }
    }
    if (pivot_row == m) return std::nullopt;  // unbounded

    // Pivot.
    const double pivot = t[pivot_row][pivot_col];
    for (std::size_t j = 0; j < cols; ++j) t[pivot_row][j] /= pivot;
    for (std::size_t i = 0; i <= m; ++i) {
      if (i == pivot_row) continue;
      const double factor = t[i][pivot_col];
      if (std::abs(factor) < kEps) continue;
      for (std::size_t j = 0; j < cols; ++j) {
        t[i][j] -= factor * t[pivot_row][j];
      }
    }
    basis[pivot_row] = pivot_col;
  }

  SimplexSolution solution;
  solution.x.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] < n) solution.x[basis[i]] = t[i][cols - 1];
  }
  solution.objective_value = t[m][cols - 1];
  return solution;
}

double exact_max_concurrent_flow(
    const std::vector<double>& capacity,
    const std::vector<double>& demands,
    const std::vector<std::vector<std::vector<int>>>& commodity_paths) {
  // Variables: one rate per (commodity, path), then alpha last.
  std::size_t num_vars = 1;
  std::vector<std::size_t> first_var;
  for (const auto& paths : commodity_paths) {
    first_var.push_back(num_vars - 1);
    num_vars += paths.size();
  }
  const std::size_t alpha_var = num_vars - 1;

  LinearProgram lp;
  lp.objective.assign(num_vars, 0.0);
  lp.objective[alpha_var] = 1.0;

  // Capacity rows: sum of path rates crossing link e <= cap_e.
  for (std::size_t e = 0; e < capacity.size(); ++e) {
    std::vector<double> row(num_vars, 0.0);
    bool used = false;
    std::size_t var = 0;
    for (const auto& paths : commodity_paths) {
      for (const auto& path : paths) {
        for (int link : path) {
          if (static_cast<std::size_t>(link) == e) {
            row[var] += 1.0;
            used = true;
          }
        }
        ++var;
      }
    }
    if (used) {
      lp.rows.push_back(std::move(row));
      lp.rhs.push_back(capacity[e]);
    }
  }

  // Demand rows: alpha * demand_j - sum paths_j <= 0.
  std::size_t var = 0;
  for (std::size_t j = 0; j < commodity_paths.size(); ++j) {
    std::vector<double> row(num_vars, 0.0);
    for (std::size_t p = 0; p < commodity_paths[j].size(); ++p) {
      row[var++] = -1.0;
    }
    row[alpha_var] = demands[j];
    lp.rows.push_back(std::move(row));
    lp.rhs.push_back(0.0);
  }
  // A commodity with no paths pins alpha to 0 via its demand row
  // (alpha * d <= 0).

  const auto solution = solve_simplex(lp);
  if (!solution) throw std::runtime_error("concurrent-flow LP unbounded");
  return solution->objective_value;
}

}  // namespace pnet::lp
