// Flattens the links of all dataplanes of a ParallelNetwork into one dense
// index space so the multicommodity-flow solvers can treat a P-Net as a
// single capacitated link set. Plane-disjointness is preserved simply
// because no path ever mixes indices from two planes.
#pragma once

#include <vector>

#include "routing/path.hpp"
#include "routing/route_table.hpp"
#include "topo/parallel.hpp"

namespace pnet::lp {

class LinkIndex {
 public:
  explicit LinkIndex(const topo::ParallelNetwork& net);

  [[nodiscard]] int num_links() const {
    return static_cast<int>(capacity_.size());
  }
  [[nodiscard]] int global(int plane, LinkId link) const {
    return offsets_[static_cast<std::size_t>(plane)] + link.v;
  }
  /// Capacity in bits/second, indexed by global link id.
  [[nodiscard]] const std::vector<double>& capacity() const {
    return capacity_;
  }
  [[nodiscard]] int plane_offset(int plane) const {
    return offsets_[static_cast<std::size_t>(plane)];
  }
  [[nodiscard]] int plane_link_count(int plane) const {
    return counts_[static_cast<std::size_t>(plane)];
  }

  /// Converts a routed Path to global link ids.
  [[nodiscard]] std::vector<int> to_global(const routing::Path& path) const;
  /// Same for a non-owning view (interned paths skip the Path copy).
  [[nodiscard]] std::vector<int> to_global(routing::PathView view) const;

 private:
  std::vector<int> offsets_;
  std::vector<int> counts_;
  std::vector<double> capacity_;
};

}  // namespace pnet::lp
