#include "lp/link_index.hpp"

namespace pnet::lp {

LinkIndex::LinkIndex(const topo::ParallelNetwork& net) {
  offsets_.reserve(static_cast<std::size_t>(net.num_planes()));
  counts_.reserve(static_cast<std::size_t>(net.num_planes()));
  int offset = 0;
  for (int p = 0; p < net.num_planes(); ++p) {
    const topo::Graph& g = net.plane(p).graph;
    offsets_.push_back(offset);
    counts_.push_back(g.num_links());
    for (int l = 0; l < g.num_links(); ++l) {
      capacity_.push_back(g.link(LinkId{l}).rate_bps);
    }
    offset += g.num_links();
  }
}

std::vector<int> LinkIndex::to_global(const routing::Path& path) const {
  std::vector<int> out;
  out.reserve(path.links.size());
  for (LinkId id : path.links) out.push_back(global(path.plane, id));
  return out;
}

std::vector<int> LinkIndex::to_global(routing::PathView view) const {
  std::vector<int> out;
  out.reserve(view.links().size());
  for (LinkId id : view.links()) out.push_back(global(view.plane(), id));
  return out;
}

}  // namespace pnet::lp
