// Multicommodity-flow throughput solvers — the repository's substitute for
// the Gurobi LP runs in section 5.1.1 of the paper.
//
// Primary solver: the Garg–Könemann / Fleischer multiplicative-weights
// algorithm for MAX CONCURRENT FLOW, which maximizes the common fraction
// alpha of every commodity's demand that can be routed simultaneously.
// Two oracles are supported:
//   * fixed candidate path sets (the "constrain the flows to use routes
//     computed by ECMP or KSP" experiments, Figs 6 and 8);
//   * an exact shortest-path oracle over all planes (the "ideal throughput
//     under no path constraint" experiment, Fig 7).
//
// The raw GK flow is super-feasible by construction; we rescale by the peak
// link utilization at the end, which makes the answer *always* feasible and
// empirically within a few percent of the LP optimum (cross-validated
// against the dense simplex solver in tests/lp_test.cpp).
#pragma once

#include <functional>
#include <vector>

#include "lp/link_index.hpp"

namespace pnet::lp {

struct Commodity {
  double demand = 1.0;
  /// Candidate paths as global link-id lists; ignored by the oracle solver.
  std::vector<std::vector<int>> paths;
};

struct McfResult {
  /// Common satisfiable demand fraction (the LP objective).
  double alpha = 0.0;
  /// Sum of delivered rates, bits/second.
  double total_throughput = 0.0;
  /// Delivered rate per commodity, bits/second.
  std::vector<double> rates;
};

struct McfOptions {
  /// Approximation accuracy; solve time grows ~1/eps^2.
  double epsilon = 0.05;
  /// Safety cap on phases (the solver normally stops on its own).
  int max_phases = 100000;
};

/// Max concurrent flow with fixed candidate path sets per commodity.
McfResult max_concurrent_flow(const std::vector<double>& capacity,
                              const std::vector<Commodity>& commodities,
                              const McfOptions& options = {});

/// Maximum TOTAL multicommodity flow (no fairness constraint) with fixed
/// candidate path sets. This is the "total throughput of flows" objective
/// the paper's dense all-to-all LP experiments report; per-commodity demand
/// caps the rate any single commodity may take (pass the host uplink rate).
/// Result's `alpha` is min rate / demand, usually 0 here — read
/// total_throughput instead.
McfResult max_total_flow(const std::vector<double>& capacity,
                         const std::vector<Commodity>& commodities,
                         const McfOptions& options = {});

/// Commodity endpoints for the unconstrained (oracle) solver: a node pair
/// that exists in every plane (host or ToR), identified per plane.
struct OracleCommodity {
  double demand = 1.0;
  /// Per-plane (src, dst) node ids, aligned with the network's planes.
  std::vector<std::pair<NodeId, NodeId>> endpoints;
};

/// Max concurrent flow where each commodity may use ANY path in ANY plane;
/// the oracle runs a weighted Dijkstra per plane each iteration. This is the
/// Fig 7 "ideal throughput, no path constraint" engine: heterogeneous planes
/// win because the min-length path over planes is shorter, so each unit of
/// flow consumes less capacity.
McfResult max_concurrent_flow_oracle(
    const topo::ParallelNetwork& net, const LinkIndex& index,
    const std::vector<OracleCommodity>& commodities,
    const McfOptions& options = {});

/// Max-min fair rate allocation for flows pinned to a single path each
/// (progressive filling). Used for simpler experiments and as a test oracle.
std::vector<double> max_min_fair(
    const std::vector<double>& capacity,
    const std::vector<std::vector<int>>& flow_paths);

}  // namespace pnet::lp
