// Dense primal simplex for small LPs:  max c^T x  s.t.  A x <= b,  x >= 0,
// with b >= 0 (every instance we build is of this form: path rates bounded
// by link capacities).
//
// This is NOT the production throughput solver — Garg–Könemann in mcf.hpp
// is — but the exact reference the tests cross-validate GK against, standing
// in for the role Gurobi played for the paper's authors.
#pragma once

#include <optional>
#include <vector>

namespace pnet::lp {

struct LinearProgram {
  /// Objective coefficients (maximize).
  std::vector<double> objective;
  /// Constraint matrix rows (each row has objective.size() entries).
  std::vector<std::vector<double>> rows;
  /// Right-hand sides, one per row, all >= 0.
  std::vector<double> rhs;
};

struct SimplexSolution {
  double objective_value = 0.0;
  std::vector<double> x;
};

/// Solves the LP; returns nullopt if unbounded. Bland's rule, so it cannot
/// cycle; intended for instances with at most a few hundred variables.
std::optional<SimplexSolution> solve_simplex(const LinearProgram& lp);

/// Convenience: the exact max-concurrent-flow LP over fixed paths, solved
/// with the simplex above. Variables are per-path rates plus alpha;
/// maximize alpha subject to sum_path_on_link <= cap and
/// sum_paths_of_commodity >= alpha * demand.
double exact_max_concurrent_flow(
    const std::vector<double>& capacity,
    const std::vector<double>& demands,
    const std::vector<std::vector<std::vector<int>>>& commodity_paths);

}  // namespace pnet::lp
