#include "lp/mcf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "routing/shortest.hpp"

namespace pnet::lp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Shared Garg–Könemann state over a flattened link set.
struct GkState {
  explicit GkState(const std::vector<double>& capacity, double epsilon)
      : cap(capacity), eps(epsilon) {
    const double m = static_cast<double>(cap.size());
    delta = std::pow(m / (1.0 - eps), -1.0 / eps);
    length.resize(cap.size());
    for (std::size_t e = 0; e < cap.size(); ++e) {
      length[e] = cap[e] > 0.0 ? delta / cap[e] : kInf;
    }
    flow.assign(cap.size(), 0.0);
    dual = delta * static_cast<double>(cap.size());
  }

  /// Sends `amount` along `path` (global link ids), updating lengths and the
  /// dual objective incrementally.
  void send(const std::vector<int>& path, double amount) {
    for (int e : path) {
      const auto idx = static_cast<std::size_t>(e);
      flow[idx] += amount;
      const double growth = eps * amount / cap[idx];
      const double delta_len = length[idx] * growth;
      length[idx] += delta_len;
      dual += cap[idx] * delta_len;
    }
  }

  [[nodiscard]] double path_length(const std::vector<int>& path) const {
    double total = 0.0;
    for (int e : path) total += length[static_cast<std::size_t>(e)];
    return total;
  }

  [[nodiscard]] double bottleneck(const std::vector<int>& path) const {
    double c = kInf;
    for (int e : path) c = std::min(c, cap[static_cast<std::size_t>(e)]);
    return c;
  }

  /// Peak utilization of the accumulated (super-feasible) flow; dividing all
  /// rates by this yields a certified-feasible solution.
  [[nodiscard]] double max_utilization() const {
    double u = 0.0;
    for (std::size_t e = 0; e < cap.size(); ++e) {
      if (cap[e] > 0.0) u = std::max(u, flow[e] / cap[e]);
    }
    return u;
  }

  const std::vector<double>& cap;
  double eps;
  double delta = 0.0;
  std::vector<double> length;
  std::vector<double> flow;
  double dual = 0.0;  // sum_e cap_e * length_e; phases stop when >= 1
};

McfResult finish(const GkState& state, const std::vector<double>& routed,
                 const std::vector<double>& demands) {
  McfResult result;
  const double scale = state.max_utilization();
  result.rates.resize(routed.size(), 0.0);
  if (scale <= 0.0) return result;  // nothing routed at all
  result.alpha = kInf;
  for (std::size_t j = 0; j < routed.size(); ++j) {
    result.rates[j] = routed[j] / scale;
    result.total_throughput += result.rates[j];
    result.alpha = std::min(result.alpha, result.rates[j] / demands[j]);
  }
  if (!std::isfinite(result.alpha)) result.alpha = 0.0;
  return result;
}

/// Practical convergence tracking: GK's theoretical stopping rule (dual >= 1)
/// can take many phases at small epsilon; the rescaled alpha typically
/// plateaus long before. We stop once alpha has been stable for a window.
class Plateau {
 public:
  bool converged(double alpha) {
    if (alpha > best_ * (1.0 + kTol)) {
      best_ = alpha;
      stable_ = 0;
    } else {
      ++stable_;
    }
    return stable_ >= kWindow;
  }

 private:
  static constexpr double kTol = 0.003;
  static constexpr int kWindow = 12;
  double best_ = 0.0;
  int stable_ = 0;
};

}  // namespace

McfResult max_concurrent_flow(const std::vector<double>& capacity,
                              const std::vector<Commodity>& commodities,
                              const McfOptions& options) {
  GkState state(capacity, options.epsilon);
  std::vector<double> routed(commodities.size(), 0.0);
  std::vector<double> demands(commodities.size(), 0.0);
  for (std::size_t j = 0; j < commodities.size(); ++j) {
    demands[j] = commodities[j].demand;
  }

  // A commodity with no candidate path pins alpha to zero; report that
  // without burning phases.
  for (const auto& commodity : commodities) {
    if (commodity.paths.empty()) {
      McfResult result;
      result.rates.assign(commodities.size(), 0.0);
      return result;
    }
  }

  Plateau plateau;
  for (int phase = 0; phase < options.max_phases && state.dual < 1.0;
       ++phase) {
    for (std::size_t j = 0; j < commodities.size(); ++j) {
      const Commodity& commodity = commodities[j];
      double remaining = commodity.demand;
      while (remaining > 0.0 && state.dual < 1.0) {
        // Oracle: cheapest candidate path under current lengths.
        const std::vector<int>* best = nullptr;
        double best_len = kInf;
        for (const auto& path : commodity.paths) {
          const double len = state.path_length(path);
          if (len < best_len) {
            best_len = len;
            best = &path;
          }
        }
        assert(best != nullptr);
        const double amount = std::min(remaining, state.bottleneck(*best));
        state.send(*best, amount);
        routed[j] += amount;
        remaining -= amount;
      }
    }
    if (phase >= 8 &&
        plateau.converged(finish(state, routed, demands).alpha)) {
      break;
    }
  }
  return finish(state, routed, demands);
}

McfResult max_total_flow(const std::vector<double>& capacity,
                         const std::vector<Commodity>& commodities,
                         const McfOptions& options) {
  GkState state(capacity, options.epsilon);
  std::vector<double> routed(commodities.size(), 0.0);
  std::vector<double> demands(commodities.size(), 1.0);

  // Garg–Könemann max multicommodity flow (no concurrency constraint): a
  // commodity only routes while its cheapest candidate path has length < 1
  // (Fleischer's dual-feasibility rule). Commodities whose paths cross
  // saturated links price themselves out; the others keep filling spare
  // capacity — that differential is what "maximize total" means. The final
  // utilization rescale certifies feasibility.
  for (int phase = 0; phase < options.max_phases; ++phase) {
    bool progress = false;
    for (std::size_t j = 0; j < commodities.size(); ++j) {
      const Commodity& commodity = commodities[j];
      if (commodity.paths.empty()) continue;
      const std::vector<int>* best = nullptr;
      double best_len = kInf;
      for (const auto& path : commodity.paths) {
        const double len = state.path_length(path);
        if (len < best_len) {
          best_len = len;
          best = &path;
        }
      }
      if (best_len >= 1.0) continue;  // priced out
      const double amount =
          std::min(commodity.demand, state.bottleneck(*best));
      state.send(*best, amount);
      routed[j] += amount;
      progress = true;
    }
    if (!progress) break;
  }
  auto result = finish(state, routed, demands);
  result.alpha = 0.0;
  for (std::size_t j = 0; j < commodities.size(); ++j) {
    // Honour per-commodity demand caps post-rescale.
    if (result.rates[j] > commodities[j].demand) {
      result.total_throughput -= result.rates[j] - commodities[j].demand;
      result.rates[j] = commodities[j].demand;
    }
  }
  return result;
}

McfResult max_concurrent_flow_oracle(
    const topo::ParallelNetwork& net, const LinkIndex& index,
    const std::vector<OracleCommodity>& commodities,
    const McfOptions& options) {
  GkState state(index.capacity(), options.epsilon);
  std::vector<double> routed(commodities.size(), 0.0);
  std::vector<double> demands(commodities.size(), 0.0);
  for (std::size_t j = 0; j < commodities.size(); ++j) {
    demands[j] = commodities[j].demand;
  }

  // Per-plane weight views for the Dijkstra oracle (local link id order
  // matches the global flattening, so the slice is contiguous).
  const int planes = net.num_planes();
  std::vector<routing::LinkWeights> plane_weights(
      static_cast<std::size_t>(planes));
  auto refresh_weights = [&](int plane) {
    const int offset = index.plane_offset(plane);
    const int count = index.plane_link_count(plane);
    auto& w = plane_weights[static_cast<std::size_t>(plane)];
    w.assign(state.length.begin() + offset,
             state.length.begin() + offset + count);
  };

  Plateau plateau;
  for (int phase = 0; phase < options.max_phases && state.dual < 1.0;
       ++phase) {
    for (std::size_t j = 0; j < commodities.size(); ++j) {
      const OracleCommodity& commodity = commodities[j];
      double remaining = commodity.demand;
      while (remaining > 0.0 && state.dual < 1.0) {
        // Oracle: true shortest path under current lengths, over all planes.
        std::vector<int> best;
        double best_len = kInf;
        for (int p = 0; p < planes; ++p) {
          refresh_weights(p);
          const auto [src, dst] =
              commodity.endpoints[static_cast<std::size_t>(p)];
          const auto path = routing::dijkstra(
              net.plane(p).graph, src, dst,
              plane_weights[static_cast<std::size_t>(p)]);
          if (!path) continue;
          routing::Path copy = *path;
          copy.plane = p;
          const auto global = index.to_global(copy);
          const double len = state.path_length(global);
          if (len < best_len) {
            best_len = len;
            best = global;
          }
        }
        if (best.empty()) {
          // Disconnected commodity: alpha is zero by definition.
          McfResult result;
          result.rates.assign(commodities.size(), 0.0);
          return result;
        }
        const double amount = std::min(remaining, state.bottleneck(best));
        state.send(best, amount);
        routed[j] += amount;
        remaining -= amount;
      }
    }
    if (phase >= 8 &&
        plateau.converged(finish(state, routed, demands).alpha)) {
      break;
    }
  }
  return finish(state, routed, demands);
}

std::vector<double> max_min_fair(
    const std::vector<double>& capacity,
    const std::vector<std::vector<int>>& flow_paths) {
  const std::size_t num_flows = flow_paths.size();
  std::vector<double> rate(num_flows, 0.0);
  std::vector<bool> frozen(num_flows, false);

  std::vector<double> remaining = capacity;
  std::vector<int> active_on_link(capacity.size(), 0);
  for (const auto& path : flow_paths) {
    for (int e : path) ++active_on_link[static_cast<std::size_t>(e)];
  }

  std::size_t frozen_count = 0;
  // Pathless flows are unconstrained; pin them to zero rather than letting
  // them absorb shares.
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (flow_paths[f].empty()) {
      frozen[f] = true;
      ++frozen_count;
    }
  }
  while (frozen_count < num_flows) {
    // The next saturating link is the one with the smallest fair share.
    double min_share = kInf;
    for (std::size_t e = 0; e < capacity.size(); ++e) {
      if (active_on_link[e] > 0) {
        min_share = std::min(min_share,
                             remaining[e] / static_cast<double>(
                                                active_on_link[e]));
      }
    }
    if (!std::isfinite(min_share)) break;  // remaining flows use no links

    // Raise every unfrozen flow by the share and freeze those crossing a
    // link that just saturated.
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (!frozen[f]) rate[f] += min_share;
    }
    for (std::size_t e = 0; e < capacity.size(); ++e) {
      if (active_on_link[e] > 0) {
        remaining[e] -= min_share * static_cast<double>(active_on_link[e]);
      }
    }
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (frozen[f]) continue;
      bool saturated = false;
      for (int e : flow_paths[f]) {
        if (remaining[static_cast<std::size_t>(e)] <= 1e-9 *
                capacity[static_cast<std::size_t>(e)]) {
          saturated = true;
          break;
        }
      }
      if (saturated || flow_paths[f].empty()) {
        frozen[f] = true;
        ++frozen_count;
        for (int e : flow_paths[f]) {
          --active_on_link[static_cast<std::size_t>(e)];
        }
      }
    }
  }
  return rate;
}

}  // namespace pnet::lp
