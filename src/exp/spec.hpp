// Declarative description of one experiment cell.
//
// The paper's evaluation is a grid of repeated experiments — topology x
// policy x workload x seed — and an ExperimentSpec is one cell of that
// grid: everything needed to reconstruct the run bit-for-bit. The
// exp::Runner consumes specs (fanning cells and trials over OS threads),
// and the exp::Report serializes them into the JSON report so a result can
// always be traced back to its exact configuration.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include <optional>

#include "control/controller.hpp"
#include "core/path_selector.hpp"
#include "exp/json.hpp"
#include "fsim/fluid.hpp"
#include "sim/network.hpp"
#include "topo/parallel.hpp"
#include "util/units.hpp"

namespace pnet::exp {

/// Which engine executes the cell's trials — a factory key resolved by
/// exp::make_engine into an exp::Engine implementation (see exp/engine.hpp).
///   kPacket — PacketEngine: core::SimHarness over the packet sim (src/sim);
///   kFsim   — FluidEngine: fsim::FluidSimulator (flow-level max-min rates,
///             100x+ faster, fidelity envelope in DESIGN.md);
///   kCustom — CustomEngine around a cell-supplied trial function (LP
///             studies, fault-injection timelines, cost models...); the
///             runner still owns seeding, fan-out, timing, and report
///             assembly.
enum class EngineKind : std::uint8_t { kPacket, kFsim, kCustom };

[[nodiscard]] const char* to_string(EngineKind engine);
/// Registry mirror of core::policy_from_string: unknown names return
/// nullopt, callers fail fast listing engine_names().
[[nodiscard]] std::optional<EngineKind> engine_from_string(
    std::string_view name);
[[nodiscard]] std::string engine_names();

/// Synthetic workload of the built-in packet/fsim engines: `rounds`
/// pattern instances of fixed-size flows, each flow jittered uniformly in
/// [round start, round start + start_jitter).
struct WorkloadSpec {
  enum class Pattern : std::uint8_t {
    kPermutation,    // each host sends to exactly one other host
    kAllToAll,       // every ordered host pair
    kRackAllToAll,   // one representative host per rack pair
  };

  Pattern pattern = Pattern::kPermutation;
  std::uint64_t flow_bytes = 1'000'000;
  int rounds = 1;
  SimTime start_jitter = 10 * units::kMicrosecond;
  /// 0: rounds run back-to-back (each drains before the next starts).
  /// >0: round r's flows are all scheduled at r * round_gap + jitter.
  SimTime round_gap = 0;
};

[[nodiscard]] const char* to_string(WorkloadSpec::Pattern pattern);

struct ExperimentSpec {
  /// Cell label: names the row/series in tables and the JSON report.
  std::string name;
  topo::NetworkSpec topo;
  core::PolicyConfig policy;
  EngineKind engine = EngineKind::kPacket;
  sim::SimConfig sim;
  WorkloadSpec workload;
  /// Base seed of the cell. Trial t runs with util::job_seed(seed, t), so
  /// cells sharing a seed get paired trial seeds (the benches' device for
  /// comparing network types on identical workload draws).
  std::uint64_t seed = 1;
  int trials = 1;
  /// 0 = run to completion; otherwise stop at this simulated time and
  /// count still-running flows as unfinished.
  SimTime deadline = 0;
  /// Control-plane option: kOff (the default) is byte-identical to specs
  /// predating the field — it serializes nothing and wires nothing.
  /// kHostLocal enables transport-driven repath; kCentralized adds the
  /// global control::Controller loop in both built-in engines.
  control::ControllerConfig controller;

  /// Empty string if the spec is runnable; otherwise a description of the
  /// first problem found.
  [[nodiscard]] std::string validate() const;

  /// Serializes the spec (deterministically) into an open JSON object.
  void to_json(JsonWriter& w) const;

  /// The spec's canonical form: to_json rendered standalone. Two specs are
  /// the same experiment iff their canonical JSON is byte-identical — the
  /// single source of truth behind hash(), the checkpoint journal, and the
  /// pnet-serve result cache.
  [[nodiscard]] std::string canonical_json() const;

  /// FNV-1a 64 over canonical_json(). Any parameter change (topology,
  /// workload, seed, engine...) changes the hash, so keyed stores
  /// (checkpoints, serve caches) can never alias distinct experiments
  /// short of a 64-bit collision.
  [[nodiscard]] std::uint64_t hash() const;
};

/// FNV-1a 64 — the repository's canonical content hash (checkpoint keys,
/// serve cache keys, warm route-cache keys all use it over canonical JSON).
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// The fluid-engine scheme matching a packet-sim routing policy, so a
/// cell's --engine=fsim run models the same path choices its packet run
/// simulates. (kEcmp and kRoundRobin both pin one plane per flow; the
/// fluid model approximates round-robin by the ECMP plane hash, which has
/// the same per-plane load in expectation. kSizeThreshold maps per flow.)
[[nodiscard]] fsim::FsimConfig to_fsim_config(const core::PolicyConfig& policy,
                                              std::uint64_t flow_bytes = 0);

}  // namespace pnet::exp
