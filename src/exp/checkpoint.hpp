// Checkpoint–resume journal for the experiment runner.
//
// The runner appends one line per completed (cell, trial) to a sidecar
// file (--checkpoint PATH); a killed sweep rerun with the same flags loads
// the journal and skips finished work, so long sweeps survive preemption —
// the forerunner of pnet-serve's result cache.
//
// Keying: entries are addressed by (spec hash, trial), where the spec hash
// is exp::ExperimentSpec::hash() — FNV-1a over the spec's canonical JSON,
// the same key the pnet-serve result cache uses. Any spec change
// (topology, workload, seed, engine...) changes the hash, so a stale
// journal can never smuggle results into a different experiment; unrelated
// entries are simply ignored. Trial *results* are encoded with shortest-round-trip
// doubles, so a resumed report is byte-identical to an uninterrupted run
// (traces excepted — they are not journaled; resumed trials lose them).
//
// Robustness: the journal is append-only and line-oriented; each record is
// flushed as it lands. Loading skips anything that does not parse — in
// particular the torn final line a kill -9 can leave — costing at most one
// re-run trial.
#pragma once

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "exp/report.hpp"
#include "exp/spec.hpp"

namespace pnet::exp {

/// One journal line's payload (no trailing newline). Exposed for tests.
[[nodiscard]] std::string encode_trial(std::uint64_t spec_hash, int trial,
                                       const TrialResult& result);
/// Parses a journal line. Returns false (leaving outputs unspecified) on
/// any malformed input — the load path's skip signal.
[[nodiscard]] bool decode_trial(const std::string& line,
                                std::uint64_t& spec_hash, int& trial,
                                TrialResult& result);

class Checkpoint {
 public:
  /// Loads `path` (fine if absent) and opens it for appending. On open
  /// failure ok() is false and record() is a no-op — the runner warns and
  /// continues uncheckpointed rather than aborting the sweep.
  explicit Checkpoint(std::string path);
  ~Checkpoint();
  Checkpoint(const Checkpoint&) = delete;
  Checkpoint& operator=(const Checkpoint&) = delete;

  /// The journal key: ExperimentSpec::hash(). Kept as a named alias so
  /// journal-key call sites read as checkpoint code.
  [[nodiscard]] static std::uint64_t hash_spec(const ExperimentSpec& spec);

  /// The journaled result for (spec_hash, trial), or nullptr. Stable for
  /// the checkpoint's lifetime (the loaded map is never mutated).
  [[nodiscard]] const TrialResult* find(std::uint64_t spec_hash,
                                        int trial) const;

  /// Appends one completed trial and flushes. Thread-safe.
  void record(std::uint64_t spec_hash, int trial, const TrialResult& result);

  [[nodiscard]] bool ok() const { return file_ != nullptr; }
  /// Entries loaded from the preexisting journal (not ones record()ed).
  [[nodiscard]] std::size_t loaded() const { return entries_.size(); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::map<std::pair<std::uint64_t, int>, TrialResult> entries_;
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
};

}  // namespace pnet::exp
