#include "exp/spec.hpp"

namespace pnet::exp {

namespace {

struct EngineName {
  EngineKind engine;
  const char* name;
};
constexpr EngineName kEngineTable[] = {
    {EngineKind::kPacket, "packet"},
    {EngineKind::kFsim, "fsim"},
    {EngineKind::kCustom, "custom"},
};

}  // namespace

const char* to_string(EngineKind engine) {
  for (const EngineName& entry : kEngineTable) {
    if (entry.engine == engine) return entry.name;
  }
  return "?";
}

std::optional<EngineKind> engine_from_string(std::string_view name) {
  for (const EngineName& entry : kEngineTable) {
    if (entry.name == name) return entry.engine;
  }
  return std::nullopt;
}

std::string engine_names() {
  std::string out;
  for (const EngineName& entry : kEngineTable) {
    if (!out.empty()) out += ' ';
    out += entry.name;
  }
  return out;
}

const char* to_string(WorkloadSpec::Pattern pattern) {
  switch (pattern) {
    case WorkloadSpec::Pattern::kPermutation: return "permutation";
    case WorkloadSpec::Pattern::kAllToAll: return "all_to_all";
    case WorkloadSpec::Pattern::kRackAllToAll: return "rack_all_to_all";
  }
  return "?";
}

std::string ExperimentSpec::validate() const {
  if (name.empty()) return "spec.name must not be empty";
  if (trials < 1) return "spec.trials must be >= 1 (got " +
                         std::to_string(trials) + ")";
  if (deadline < 0) return "spec.deadline must be >= 0";
  if (engine == EngineKind::kCustom) return "";  // the trial fn owns the rest
  if (topo.hosts < 2) return "spec.topo.hosts must be >= 2 (got " +
                             std::to_string(topo.hosts) + ")";
  if (topo.parallelism < 1) return "spec.topo.parallelism must be >= 1";
  if (topo.base_rate_bps <= 0) return "spec.topo.base_rate_bps must be > 0";
  if (workload.rounds < 1) return "spec.workload.rounds must be >= 1";
  if (workload.flow_bytes == 0) return "spec.workload.flow_bytes must be > 0";
  if (workload.start_jitter < 0) return "spec.workload.start_jitter must "
                                        "be >= 0";
  if (workload.round_gap < 0) return "spec.workload.round_gap must be >= 0";
  if (workload.round_gap == 0 && workload.rounds > 1 && deadline > 0) {
    // Back-to-back rounds each run to completion; a deadline cannot be
    // applied meaningfully across them.
    return "spec.deadline requires workload.round_gap > 0 when rounds > 1";
  }
  if (policy.k < 1) return "spec.policy.k must be >= 1";
  if (policy.ecmp_path_cap < 1) return "spec.policy.ecmp_path_cap must "
                                       "be >= 1";
  if (const std::string err = controller.validate(); !err.empty()) {
    return "spec.controller: " + err;
  }
  return "";
}

void ExperimentSpec::to_json(JsonWriter& w) const {
  w.begin_object();
  w.field("name", name);
  w.field("engine", to_string(engine));
  w.field("seed", seed);
  w.field("trials", trials);
  if (deadline > 0) w.field("deadline_us", units::to_microseconds(deadline));
  // Written only when a control plane is on: specs predating the field
  // keep their canonical bytes (and hashes) unchanged.
  if (controller.active()) {
    w.key("controller").begin_object();
    w.field("mode", control::to_string(controller.mode));
    w.field("cadence_us", units::to_microseconds(controller.cadence));
    w.field("detect_delay_us",
            units::to_microseconds(controller.detect_delay));
    w.field("imbalance_threshold", controller.imbalance_threshold);
    w.field("max_repins_per_tick", controller.max_repins_per_tick);
    w.field("window", controller.window);
    w.end_object();
  }
  if (engine != EngineKind::kCustom) {
    w.key("topo").begin_object();
    w.field("kind", topo::to_string(topo.topo));
    w.field("type", topo::to_string(topo.type));
    w.field("hosts", topo.hosts);
    w.field("parallelism", topo.parallelism);
    w.field("base_rate_gbps", topo.base_rate_bps / units::kGbps);
    w.field("seed", topo.seed);
    if (topo.jf_switches > 0) w.field("jf_switches", topo.jf_switches);
    if (topo.jf_degree > 0) w.field("jf_degree", topo.jf_degree);
    if (topo.jf_hosts_per_switch > 0) {
      w.field("jf_hosts_per_switch", topo.jf_hosts_per_switch);
    }
    w.end_object();
    w.key("policy").begin_object();
    w.field("policy", core::to_string(policy.policy));
    w.field("k", policy.k);
    w.field("ecmp_path_cap", policy.ecmp_path_cap);
    w.field("multipath_cutoff_bytes", policy.multipath_cutoff_bytes);
    w.end_object();
    w.key("workload").begin_object();
    w.field("pattern", to_string(workload.pattern));
    w.field("flow_bytes", workload.flow_bytes);
    w.field("rounds", workload.rounds);
    w.field("start_jitter_us", units::to_microseconds(workload.start_jitter));
    if (workload.round_gap > 0) {
      w.field("round_gap_us", units::to_microseconds(workload.round_gap));
    }
    w.end_object();
    w.key("sim").begin_object();
    w.field("queue_buffer_bytes", sim.queue_buffer_bytes);
    w.field("ecn_threshold_bytes", sim.ecn_threshold_bytes);
    w.field("priority_acks", sim.priority_acks);
    w.field("trim_to_header", sim.trim_to_header);
    w.field("dctcp", sim.tcp.dctcp);
    w.end_object();
  }
  w.end_object();
}

std::string ExperimentSpec::canonical_json() const {
  JsonWriter w;
  to_json(w);
  return w.str();
}

std::uint64_t ExperimentSpec::hash() const { return fnv1a(canonical_json()); }

fsim::FsimConfig to_fsim_config(const core::PolicyConfig& policy,
                                std::uint64_t flow_bytes) {
  fsim::FsimConfig config;
  config.k = policy.k;
  config.ecmp_path_cap = policy.ecmp_path_cap;
  switch (policy.policy) {
    case core::RoutingPolicy::kEcmp:
    case core::RoutingPolicy::kRoundRobin:
      config.scheme = fsim::RouteScheme::kEcmpPlaneHash;
      break;
    case core::RoutingPolicy::kShortestPlane:
      config.scheme = fsim::RouteScheme::kShortestPlane;
      break;
    case core::RoutingPolicy::kKspMultipath:
      config.scheme = fsim::RouteScheme::kKspMultipath;
      break;
    case core::RoutingPolicy::kSizeThreshold:
      config.scheme = flow_bytes > policy.multipath_cutoff_bytes
                          ? fsim::RouteScheme::kKspMultipath
                          : fsim::RouteScheme::kShortestPlane;
      break;
  }
  return config;
}

}  // namespace pnet::exp
