#include "exp/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pnet::exp {

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values inside the exactly-representable range print as
  // integers: "3" not "3.0", matching how counts read in a report.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  // Shortest precision that round-trips. %.*g never needs more than 17
  // significant digits for a double.
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string json_string(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes a "key": — no comma, the key placed one
  }
  if (!has_elements_.empty()) {
    if (has_elements_.back()) out_ += ',';
    has_elements_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  has_elements_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  has_elements_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  out_ += json_string(name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  out_ += json_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ += json_string(v);
  return *this;
}

}  // namespace pnet::exp
