#include "exp/report.hpp"

#include <cstdio>

#include "util/stats.hpp"

namespace pnet::exp {

const char* to_string(TrialErrorKind kind) {
  switch (kind) {
    case TrialErrorKind::kException: return "exception";
    case TrialErrorKind::kTimeout: return "timeout";
    case TrialErrorKind::kCancelled: return "cancelled";
    case TrialErrorKind::kInvariant: return "invariant";
  }
  return "?";
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  RunningStats stats;
  for (double x : samples) stats.add(x);
  s.count = stats.count();
  s.mean = stats.mean();
  s.stddev = stats.stddev();
  s.min = stats.min();
  s.max = stats.max();
  const auto ps = percentiles(samples, {50, 90, 99});
  s.median = ps[0];
  s.p90 = ps[1];
  s.p99 = ps[2];
  return s;
}

std::vector<double> CellResult::merged_fct_us() const {
  std::vector<double> merged;
  for (const auto& trial : trials) {
    merged.insert(merged.end(), trial.fct_us.begin(), trial.fct_us.end());
  }
  return merged;
}

std::vector<double> CellResult::merged_samples(const std::string& key) const {
  std::vector<double> merged;
  for (const auto& trial : trials) {
    const auto it = trial.samples.find(key);
    if (it == trial.samples.end()) continue;
    merged.insert(merged.end(), it->second.begin(), it->second.end());
  }
  return merged;
}

std::vector<double> CellResult::metric_values(const std::string& key) const {
  std::vector<double> values;
  for (const auto& trial : trials) {
    const auto it = trial.metrics.find(key);
    if (it != trial.metrics.end()) values.push_back(it->second);
  }
  return values;
}

std::uint64_t CellResult::flows_started() const {
  std::uint64_t n = 0;
  for (const auto& trial : trials) n += trial.flows_started;
  return n;
}

std::uint64_t CellResult::flows_finished() const {
  std::uint64_t n = 0;
  for (const auto& trial : trials) n += trial.flows_finished;
  return n;
}

double CellResult::delivered_bytes() const {
  double n = 0;
  for (const auto& trial : trials) n += trial.delivered_bytes;
  return n;
}

double CellResult::sim_seconds() const {
  double n = 0;
  for (const auto& trial : trials) n += trial.sim_seconds;
  return n;
}

std::uint64_t CellResult::events() const {
  std::uint64_t n = 0;
  for (const auto& trial : trials) n += trial.events;
  return n;
}

double CellResult::wall_s() const {
  double n = 0;
  for (const auto& trial : trials) n += trial.wall_s;
  return n;
}

double CellResult::events_per_sec() const {
  const double wall = wall_s();
  return wall > 0 ? static_cast<double>(events()) / wall : 0.0;
}

std::uint64_t Report::total_unfinished_flows() const {
  std::uint64_t n = 0;
  for (const auto& cell : cells_) n += cell.unfinished_flows();
  return n;
}

std::uint64_t Report::total_trial_errors() const {
  std::uint64_t n = 0;
  for (const auto& cell : cells_) n += cell.errors.size();
  return n;
}

namespace {

void summary_to_json(JsonWriter& w, const Summary& s) {
  w.begin_object();
  w.field("count", static_cast<std::uint64_t>(s.count));
  w.field("mean", s.mean);
  w.field("stddev", s.stddev);
  w.field("p50", s.median);
  w.field("p90", s.p90);
  w.field("p99", s.p99);
  w.field("min", s.min);
  w.field("max", s.max);
  w.end_object();
}

void cell_to_json(JsonWriter& w, const CellResult& cell, bool with_runtime) {
  w.begin_object();
  w.key("spec");
  cell.spec.to_json(w);

  w.key("metrics").begin_object();
  w.key("fct_us");
  summary_to_json(w, cell.fct());
  w.key("flows").begin_object();
  w.field("started", cell.flows_started());
  w.field("finished", cell.flows_finished());
  w.field("unfinished", cell.unfinished_flows());
  w.end_object();
  w.field("delivered_bytes", cell.delivered_bytes());
  w.field("sim_seconds", cell.sim_seconds());
  w.field("events", cell.events());

  // Scalar metrics: union of keys across trials (std::map — key order).
  // Telemetry output (the "tm/" prefix fold_telemetry applies) gets its
  // own block below instead of the generic summaries.
  std::map<std::string, bool> metric_keys;
  std::map<std::string, bool> sample_keys;
  std::map<std::string, bool> tm_metric_keys;
  std::map<std::string, bool> tm_sample_keys;
  const auto is_tm = [](const std::string& key) {
    return key.rfind("tm/", 0) == 0;
  };
  for (const auto& trial : cell.trials) {
    for (const auto& [key, value] : trial.metrics) {
      (is_tm(key) ? tm_metric_keys : metric_keys)[key] = true;
    }
    for (const auto& [key, value] : trial.samples) {
      (is_tm(key) ? tm_sample_keys : sample_keys)[key] = true;
    }
  }
  if (!metric_keys.empty()) {
    w.key("extra").begin_object();
    for (const auto& [key, unused] : metric_keys) {
      const auto values = cell.metric_values(key);
      const auto s = summarize(values);
      w.key(key).begin_object();
      w.field("mean", s.mean);
      w.field("stddev", s.stddev);
      w.key("per_trial").begin_array();
      for (double v : values) w.value(v);
      w.end_array();
      w.end_object();
    }
    w.end_object();
  }
  if (!sample_keys.empty()) {
    w.key("samples").begin_object();
    for (const auto& [key, unused] : sample_keys) {
      w.key(key);
      summary_to_json(w, summarize(cell.merged_samples(key)));
    }
    w.end_object();
  }
  w.end_object();  // metrics

  // Telemetry block: registry counters/gauges (sum + per-trial values)
  // and sampler series (per-trial arrays on the trial's sample grid).
  // Deterministic — sampler series are pure functions of (spec, seed) —
  // so it lives outside the runtime block.
  if (!tm_metric_keys.empty() || !tm_sample_keys.empty()) {
    w.key("telemetry").begin_object();
    if (!tm_metric_keys.empty()) {
      w.key("counters").begin_object();
      for (const auto& [key, unused] : tm_metric_keys) {
        const auto values = cell.metric_values(key);
        double sum = 0.0;
        for (double v : values) sum += v;
        w.key(key.substr(3)).begin_object();
        w.field("sum", sum);
        w.key("per_trial").begin_array();
        for (double v : values) w.value(v);
        w.end_array();
        w.end_object();
      }
      w.end_object();
    }
    if (!tm_sample_keys.empty()) {
      w.key("series").begin_object();
      for (const auto& [key, unused] : tm_sample_keys) {
        w.key(key.substr(3)).begin_array();
        for (const auto& trial : cell.trials) {
          const auto it = trial.samples.find(key);
          w.begin_array();
          if (it != trial.samples.end()) {
            for (double v : it->second) w.value(v);
          }
          w.end_array();
        }
        w.end_array();
      }
      w.end_object();
    }
    w.end_object();  // telemetry
  }

  // Errors block: failed trials in trial order. Deterministic (the `what`
  // strings carry no wall-clock values), so it lives outside the runtime
  // block; emitted only when non-empty so clean reports are unchanged.
  if (!cell.errors.empty()) {
    w.key("errors").begin_array();
    for (const auto& error : cell.errors) {
      w.begin_object();
      w.field("kind", to_string(error.kind));
      w.field("what", error.what);
      w.field("cell", error.cell);
      w.field("trial", error.trial);
      w.field("seed", error.seed);
      w.end_object();
    }
    w.end_array();
  }

  if (with_runtime) {
    w.key("runtime").begin_object();
    w.field("wall_s", cell.wall_s());
    w.field("events_per_sec", cell.events_per_sec());
    for (const auto& [key, value] : cell.runtime) w.field(key, value);
    w.key("trial_wall_s").begin_array();
    for (const auto& trial : cell.trials) w.value(trial.wall_s);
    w.end_array();
    std::map<std::string, bool> runtime_keys;
    for (const auto& trial : cell.trials) {
      for (const auto& [key, value] : trial.runtime) runtime_keys[key] = true;
    }
    for (const auto& [key, unused] : runtime_keys) {
      w.key(key).begin_array();
      for (const auto& trial : cell.trials) {
        const auto it = trial.runtime.find(key);
        w.value(it == trial.runtime.end() ? 0.0 : it->second);
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_object();  // cell
}

}  // namespace

std::string Report::to_json(bool with_runtime) const {
  JsonWriter w;
  w.begin_object();
  w.field("schema_version", kReportSchemaVersion);
  w.field("bench", bench_);
  w.field("unfinished_flows", total_unfinished_flows());
  // Only when non-zero, so clean-run reports keep their exact bytes.
  if (total_trial_errors() > 0) {
    w.field("trial_errors", total_trial_errors());
  }
  w.key("cells").begin_array();
  for (const auto& cell : cells_) cell_to_json(w, cell, with_runtime);
  w.end_array();
  if (with_runtime) {
    w.key("runtime").begin_object();
    w.field("threads", threads_);
    w.field("sim_threads", sim_threads_);
    w.field("elapsed_s", elapsed_s_);
    double wall = 0.0;
    std::uint64_t events = 0;
    for (const auto& cell : cells_) {
      wall += cell.wall_s();
      events += cell.events();
    }
    w.field("trial_wall_s", wall);
    w.field("events", events);
    w.field("events_per_sec", wall > 0 ? static_cast<double>(events) / wall
                                       : 0.0);
    w.end_object();
  }
  w.end_object();
  return w.str() + "\n";
}

bool Report::write_json(const std::string& path, bool with_runtime) const {
  const std::string text = to_json(with_runtime);
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "exp::Report: cannot write '%s'\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "exp::Report: short write to '%s'\n",
                        path.c_str());
  return ok;
}

bool Report::write_trace(const std::string& path) const {
  std::string text;
  const bool binary =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".bin") == 0;
  if (binary) {
    // Binary mode has no pid/tid lanes: merge everything into one trace.
    telemetry::Trace merged;
    for (const auto& cell : cells_) {
      for (const auto& trial : cell.trials) {
        if (trial.trace) merged.append(*trial.trace);
      }
    }
    merged.append_binary(text);
  } else {
    text = "{\"traceEvents\":[\n";
    bool first = true;
    for (std::size_t c = 0; c < cells_.size(); ++c) {
      const auto& cell = cells_[c];
      bool any = false;
      for (const auto& trial : cell.trials) any |= (trial.trace != nullptr);
      if (!any) continue;
      const int pid = static_cast<int>(c);
      telemetry::append_chrome_process_name(text, pid, cell.spec.name,
                                            first);
      for (std::size_t t = 0; t < cell.trials.size(); ++t) {
        if (!cell.trials[t].trace) continue;
        cell.trials[t].trace->append_chrome_json(text, pid,
                                                 static_cast<int>(t), first);
      }
    }
    text += "\n],\"displayTimeUnit\":\"ms\"}\n";
  }
  std::FILE* f = std::fopen(path.c_str(), binary ? "wb" : "w");
  if (f == nullptr) {
    std::fprintf(stderr, "exp::Report: cannot write '%s'\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "exp::Report: short write to '%s'\n",
                        path.c_str());
  return ok;
}

}  // namespace pnet::exp
