#include "exp/checkpoint.hpp"

#include <fstream>
#include <sstream>

#include "exp/json.hpp"

namespace pnet::exp {

namespace {

/// Doubles travel as their shortest round-trip decimal (json_double), so
/// a journaled metric re-serializes to the exact bytes the uninterrupted
/// run would have produced.
void put_double(std::string& out, double v) {
  out += ' ';
  out += json_double(v);
}

bool get_double(std::istringstream& in, double& v) {
  return static_cast<bool>(in >> v);
}

/// Metric/sample keys are internal identifiers (no whitespace). A key
/// that did contain whitespace would fail decode and cost one re-run
/// trial — safe, just wasteful — so no quoting layer is needed.
bool get_key(std::istringstream& in, std::string& key) {
  return static_cast<bool>(in >> key) && key.find(' ') == std::string::npos;
}

bool expect(std::istringstream& in, const char* literal) {
  std::string token;
  return static_cast<bool>(in >> token) && token == literal;
}

}  // namespace

std::string encode_trial(std::uint64_t spec_hash, int trial,
                         const TrialResult& result) {
  std::ostringstream head;
  head << "T " << std::hex << spec_hash << std::dec << ' ' << trial
       << " fs " << result.flows_started << " ff " << result.flows_finished
       << " ev " << result.events;
  std::string out = head.str();
  out += " db";
  put_double(out, result.delivered_bytes);
  out += " ss";
  put_double(out, result.sim_seconds);
  out += " ws";
  put_double(out, result.wall_s);
  out += " F " + std::to_string(result.fct_us.size());
  for (double v : result.fct_us) put_double(out, v);
  out += " M " + std::to_string(result.metrics.size());
  for (const auto& [key, value] : result.metrics) {
    out += ' ' + key;
    put_double(out, value);
  }
  out += " S " + std::to_string(result.samples.size());
  for (const auto& [key, values] : result.samples) {
    out += ' ' + key + ' ' + std::to_string(values.size());
    for (double v : values) put_double(out, v);
  }
  out += " R " + std::to_string(result.runtime.size());
  for (const auto& [key, value] : result.runtime) {
    out += ' ' + key;
    put_double(out, value);
  }
  return out;
}

bool decode_trial(const std::string& line, std::uint64_t& spec_hash,
                  int& trial, TrialResult& result) {
  std::istringstream in(line);
  if (!expect(in, "T")) return false;
  in >> std::hex >> spec_hash >> std::dec >> trial;
  if (!in) return false;
  result = TrialResult{};
  if (!expect(in, "fs") || !(in >> result.flows_started)) return false;
  if (!expect(in, "ff") || !(in >> result.flows_finished)) return false;
  if (!expect(in, "ev") || !(in >> result.events)) return false;
  if (!expect(in, "db") || !get_double(in, result.delivered_bytes)) {
    return false;
  }
  if (!expect(in, "ss") || !get_double(in, result.sim_seconds)) return false;
  if (!expect(in, "ws") || !get_double(in, result.wall_s)) return false;

  std::size_t count = 0;
  if (!expect(in, "F") || !(in >> count)) return false;
  result.fct_us.resize(count);
  for (double& v : result.fct_us) {
    if (!get_double(in, v)) return false;
  }
  if (!expect(in, "M") || !(in >> count)) return false;
  for (std::size_t i = 0; i < count; ++i) {
    std::string key;
    double value = 0.0;
    if (!get_key(in, key) || !get_double(in, value)) return false;
    result.metrics[key] = value;
  }
  if (!expect(in, "S") || !(in >> count)) return false;
  for (std::size_t i = 0; i < count; ++i) {
    std::string key;
    std::size_t n = 0;
    if (!get_key(in, key) || !(in >> n)) return false;
    auto& values = result.samples[key];
    values.resize(n);
    for (double& v : values) {
      if (!get_double(in, v)) return false;
    }
  }
  if (!expect(in, "R") || !(in >> count)) return false;
  for (std::size_t i = 0; i < count; ++i) {
    std::string key;
    double value = 0.0;
    if (!get_key(in, key) || !get_double(in, value)) return false;
    result.runtime[key] = value;
  }
  return true;
}

std::uint64_t Checkpoint::hash_spec(const ExperimentSpec& spec) {
  return spec.hash();
}

Checkpoint::Checkpoint(std::string path) : path_(std::move(path)) {
  std::ifstream in(path_);
  std::string line;
  while (std::getline(in, line)) {
    std::uint64_t spec_hash = 0;
    int trial = 0;
    TrialResult result;
    if (decode_trial(line, spec_hash, trial, result)) {
      entries_[{spec_hash, trial}] = std::move(result);
    }
    // else: torn or foreign line — skip; at worst that trial re-runs.
  }
  in.close();
  file_ = std::fopen(path_.c_str(), "a");
  if (file_ == nullptr) {
    std::fprintf(stderr,
                 "exp::Checkpoint: cannot open '%s' for append; "
                 "continuing without checkpointing\n",
                 path_.c_str());
  }
}

Checkpoint::~Checkpoint() {
  if (file_ != nullptr) std::fclose(file_);
}

const TrialResult* Checkpoint::find(std::uint64_t spec_hash,
                                    int trial) const {
  const auto it = entries_.find({spec_hash, trial});
  return it == entries_.end() ? nullptr : &it->second;
}

void Checkpoint::record(std::uint64_t spec_hash, int trial,
                        const TrialResult& result) {
  if (file_ == nullptr) return;
  const std::string line = encode_trial(spec_hash, trial, result);
  const std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

}  // namespace pnet::exp
