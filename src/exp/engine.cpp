#include "exp/engine.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "control/controller.hpp"
#include "control/dataplanes.hpp"
#include "core/harness.hpp"
#include "util/parallel.hpp"
#include "workload/patterns.hpp"

namespace pnet::exp {

namespace {

std::vector<workload::HostPair> pattern_pairs(
    const WorkloadSpec& workload, const topo::ParallelNetwork& net,
    Rng& rng) {
  switch (workload.pattern) {
    case WorkloadSpec::Pattern::kPermutation:
      return workload::permutation_pairs(net.num_hosts(), rng);
    case WorkloadSpec::Pattern::kAllToAll:
      return workload::all_to_all_pairs(net.num_hosts());
    case WorkloadSpec::Pattern::kRackAllToAll:
      return workload::rack_all_to_all_pairs(net);
  }
  return {};
}

SimTime jittered(SimTime base, SimTime jitter, Rng& rng) {
  if (jitter <= 0) return base;
  return base + static_cast<SimTime>(
                    rng.next_below(static_cast<std::uint64_t>(jitter)));
}

/// Folds the controller's decision counters into the trial metrics.
/// Written only for trials that actually ran a Controller, so
/// controller-off reports keep their seed bytes.
void fold_controller(const control::Controller* controller, TrialResult& r) {
  if (controller == nullptr) return;
  r.metrics["ctl/ticks"] += static_cast<double>(controller->ticks());
  r.metrics["ctl/repins"] += static_cast<double>(controller->repins());
  r.metrics["ctl/plane_events"] +=
      static_cast<double>(controller->plane_events());
  r.metrics["ctl/churn_skips"] +=
      static_cast<double>(controller->churn_skips());
}

}  // namespace

void throw_if_cancelled(const util::CancelToken& cancel) {
  if (!cancel.cancelled()) return;
  if (cancel.reason() == util::CancelToken::Reason::kDeadline) {
    throw TrialCancelled(TrialErrorKind::kTimeout,
                         "trial wall-clock budget expired");
  }
  throw TrialCancelled(TrialErrorKind::kCancelled, "run cancelled");
}

CellResult Engine::run(const ExperimentSpec& spec, const EngineContext& ctx) {
  CellResult cell;
  cell.spec = spec;
  cell.trials.reserve(static_cast<std::size_t>(spec.trials));
  for (int t = 0; t < spec.trials; ++t) {
    const TrialContext trial{spec, t,
                             util::job_seed(spec.seed,
                                            static_cast<std::uint64_t>(t)),
                             ctx.route_cache, ctx.telemetry, ctx.cancel,
                             ctx.audit, ctx.sim_threads};
    cell.trials.push_back(run_trial(trial));
  }
  return cell;
}

TrialResult PacketEngine::run_trial(const TrialContext& ctx) {
  const ExperimentSpec& spec = ctx.spec;
  const WorkloadSpec& wl = spec.workload;
  TrialResult r;
  auto telemetry = make_telemetry(ctx.telemetry);
  util::Audit audit;  // collecting; only wired when ctx.audit
  if (ctx.audit && telemetry != nullptr) {
    audit.set_counter(telemetry->registry.counter("audit_violations"));
  }
  core::SimHarness harness({.spec = spec.topo,
                            .policy = spec.policy,
                            .sim_config = spec.sim,
                            .route_cache = ctx.route_cache,
                            .telemetry = telemetry.get(),
                            .cancel = ctx.cancel.is_armed() ? &ctx.cancel
                                                         : nullptr,
                            .audit = ctx.audit ? &audit : nullptr,
                            .sim_threads = ctx.sim_threads});
  // Control plane (DESIGN.md §5j). Any active mode arms transport repath
  // metadata; kCentralized additionally runs the global Controller off the
  // control queue, where ticks land at barrier epochs under the sharded
  // engine — that is what keeps controller-enabled reports byte-identical
  // at every --sim-threads value. When the mode is kOff nothing below
  // touches the harness, so those runs keep their seed bytes.
  std::unique_ptr<control::PacketDataplane> dataplane;
  std::unique_ptr<control::Controller> controller;
  std::unique_ptr<control::ControlDriver> control_driver;
  if (spec.controller.active()) {
    harness.selector().enable_repath(harness.factory());
  }
  if (spec.controller.centralized()) {
    dataplane = std::make_unique<control::PacketDataplane>(harness);
    controller =
        std::make_unique<control::Controller>(spec.controller, *dataplane);
    control_driver = std::make_unique<control::ControlDriver>(
        harness.events(), *controller, spec.controller.cadence);
    if (sim::ShardSet* shards = harness.shards(); shards != nullptr) {
      control_driver->set_more_work([shards] { return shards->busy(); });
    }
    control_driver->start(harness.events().now());
  }
  Rng rng(ctx.seed);
  for (int round = 0; round < wl.rounds; ++round) {
    if (ctx.cancel.cancelled()) break;
    const SimTime base =
        wl.round_gap > 0 ? round * wl.round_gap : harness.events().now();
    for (const auto& [src, dst] :
         pattern_pairs(wl, harness.net(), rng)) {
      ++r.flows_started;
      harness.starter()(src, dst, wl.flow_bytes,
                        jittered(base, wl.start_jitter, rng),
                        [&r](const sim::FlowRecord& rec) {
                          r.fct_us.push_back(
                              units::to_microseconds(rec.end - rec.start));
                          ++r.flows_finished;
                        });
    }
    if (wl.round_gap == 0) {
      // Back-to-back rounds: drain this round before drawing the next.
      if (spec.deadline > 0) {
        harness.run_until(spec.deadline);
      } else {
        harness.run();
      }
    }
  }
  if (wl.round_gap > 0) {
    if (spec.deadline > 0) {
      harness.run_until(spec.deadline);
    } else {
      harness.run();
    }
  }
  // Finalize before any throw: a cancelled trial must still log its
  // partial flow records (and run the conservation sweep) — the records
  // stay reachable through the harness for direct callers even though the
  // runner discards this TrialResult.
  harness.finalize(harness.events().now());
  throw_if_cancelled(ctx.cancel);
  if (ctx.audit) audit.check();  // raises InvariantViolation on breaches
  r.delivered_bytes =
      static_cast<double>(harness.factory().total_delivered_bytes());
  r.sim_seconds = units::to_seconds(harness.events().now());
  r.events = harness.dispatched();  // control queue + all shards
  // Misconfiguration telltale (out-of-range loss/rate-scale settings were
  // clamped); emitted only when nonzero so clean-run report bytes stay
  // byte-identical to pre-clamping builds.
  if (const std::uint64_t clamped =
          harness.network().total_config_clamped();
      clamped > 0) {
    r.metrics["config_clamped"] = static_cast<double>(clamped);
  }
  fold_controller(controller.get(), r);
  fold_telemetry(telemetry, r);
  return r;
}

TrialResult FluidEngine::run_trial(const TrialContext& ctx) {
  const ExperimentSpec& spec = ctx.spec;
  const WorkloadSpec& wl = spec.workload;
  const fsim::FsimConfig config = to_fsim_config(spec.policy, wl.flow_bytes);
  const auto net = topo::build_network(spec.topo);
  TrialResult r;
  Rng rng(ctx.seed);
  util::Audit audit;  // collecting; only wired when ctx.audit
  const util::CancelToken* cancel =
      ctx.cancel.is_armed() ? &ctx.cancel : nullptr;

  auto finish = [&r](fsim::FluidSimulator& fluid) {
    for (double fct : fluid.fct_us()) r.fct_us.push_back(fct);
    r.flows_finished += fluid.results().size();
    r.delivered_bytes += fluid.delivered_bytes();
    r.sim_seconds += units::to_seconds(fluid.now());
    r.events += fluid.events();
  };

  // Control plane (DESIGN.md §5j): the fluid engine calls Controller::tick
  // from inside its event loop via set_control, so control decisions are
  // ordinary simulation events here too. The hooks must outlive run();
  // callers keep the returned pair alive alongside the simulator.
  struct ControlHooks {
    std::unique_ptr<control::FluidDataplane> dataplane;
    std::unique_ptr<control::Controller> controller;
  };
  auto attach_control = [&spec](fsim::FluidSimulator& fluid) {
    ControlHooks hooks;
    if (!spec.controller.centralized()) return hooks;
    hooks.dataplane = std::make_unique<control::FluidDataplane>(fluid);
    hooks.controller = std::make_unique<control::Controller>(
        spec.controller, *hooks.dataplane);
    control::Controller* ctl = hooks.controller.get();
    ctl->start(fluid.now());
    fluid.set_control(spec.controller.cadence,
                      [ctl](SimTime t) { ctl->tick(t); });
    return hooks;
  };

  if (wl.round_gap > 0 || wl.rounds == 1) {
    // One simulator for the whole trial (overlapping rounds share it and
    // its allocator state) — the only shape where a single sample grid /
    // trace covers the trial, so telemetry attaches here.
    auto telemetry = make_telemetry(ctx.telemetry);
    if (ctx.audit && telemetry != nullptr) {
      audit.set_counter(telemetry->registry.counter("audit_violations"));
    }
    fsim::FluidSimulator fluid(net, config, ctx.route_cache);
    fluid.set_telemetry(telemetry.get());
    if (cancel != nullptr) fluid.set_cancel(cancel);
    if (ctx.audit) fluid.set_audit(&audit);
    const ControlHooks hooks = attach_control(fluid);
    for (int round = 0; round < wl.rounds; ++round) {
      const SimTime base = round * wl.round_gap;
      for (const auto& [src, dst] : pattern_pairs(wl, net, rng)) {
        ++r.flows_started;
        fluid.add_flow({src, dst, wl.flow_bytes,
                        jittered(base, wl.start_jitter, rng)});
      }
    }
    if (spec.deadline > 0) {
      fluid.run_until(spec.deadline);
    } else {
      fluid.run();
    }
    finish(fluid);
    fold_controller(hooks.controller.get(), r);
    fold_telemetry(telemetry, r);
  } else {
    // Back-to-back rounds: a fresh simulator per round, as the packet
    // engine's drained-queue equivalent. Simulated clocks restart per
    // round, so no cross-round telemetry is collected.
    for (int round = 0; round < wl.rounds; ++round) {
      if (ctx.cancel.cancelled()) break;
      fsim::FluidSimulator fluid(net, config, ctx.route_cache);
      if (cancel != nullptr) fluid.set_cancel(cancel);
      if (ctx.audit) fluid.set_audit(&audit);
      const ControlHooks hooks = attach_control(fluid);
      for (const auto& [src, dst] : pattern_pairs(wl, net, rng)) {
        ++r.flows_started;
        fluid.add_flow({src, dst, wl.flow_bytes,
                        jittered(0, wl.start_jitter, rng)});
      }
      if (spec.deadline > 0) {
        fluid.run_until(spec.deadline);
      } else {
        fluid.run();
      }
      finish(fluid);
      fold_controller(hooks.controller.get(), r);
    }
  }
  throw_if_cancelled(ctx.cancel);
  if (ctx.audit) audit.check();  // raises InvariantViolation on breaches
  return r;
}

std::unique_ptr<Engine> make_engine(EngineKind kind, TrialFn fn) {
  if (fn) return std::make_unique<CustomEngine>(std::move(fn));
  switch (kind) {
    case EngineKind::kPacket: return std::make_unique<PacketEngine>();
    case EngineKind::kFsim: return std::make_unique<FluidEngine>();
    case EngineKind::kCustom:
      throw std::invalid_argument(
          "exp::make_engine: EngineKind::kCustom requires a trial function");
  }
  throw std::invalid_argument("exp::make_engine: unknown EngineKind");
}

std::shared_ptr<telemetry::Telemetry> make_telemetry(
    const telemetry::Config& config) {
  if (!config.enabled()) return nullptr;
  return std::make_shared<telemetry::Telemetry>(config);
}

void fold_telemetry(const std::shared_ptr<telemetry::Telemetry>& telemetry,
                    TrialResult& result) {
  if (telemetry == nullptr) return;
  const auto& sampler = telemetry->sampler;
  if (!sampler.times().empty()) {
    auto& t_us = result.samples["tm/t_us"];
    t_us.reserve(sampler.times().size());
    for (const SimTime t : sampler.times()) {
      t_us.push_back(units::to_microseconds(t));
    }
    for (std::size_t i = 0; i < sampler.num_series(); ++i) {
      result.samples["tm/" + sampler.name(i)] = sampler.values(i);
    }
  }
  const telemetry::Registry::Snapshot snap = telemetry->registry.snapshot();
  for (const auto& [name, value] : snap.counters) {
    result.metrics["tm/" + name] = static_cast<double>(value);
  }
  for (const auto& [name, value] : snap.gauges) {
    result.metrics["tm/" + name] = value;
  }
  if (telemetry->trace.size() > 0) {
    // Aliasing shared_ptr: keeps the whole Telemetry block alive for as
    // long as the report holds the trace.
    result.trace = std::shared_ptr<const telemetry::Trace>(
        telemetry, &telemetry->trace);
  }
}

}  // namespace pnet::exp
