// exp::Engine — the execution-strategy interface behind the experiment
// runner. An ExperimentSpec's EngineKind is just a factory key; the object
// that actually runs trials is one of these. The runner (and any direct
// caller) programs against the interface, so the packet simulator, the
// fluid simulator, and bench-supplied custom trial bodies are
// interchangeable per cell:
//
//   auto engine = exp::make_engine(spec.engine);
//   CellResult cell = engine->run(spec, {.telemetry = {...}});
//
// Telemetry rides the EngineContext: when `telemetry.enabled()`, the
// built-in engines instrument each trial with a per-trial
// telemetry::Telemetry block and fold its output into the TrialResult
// under "tm/"-prefixed keys (see fold_telemetry), which the Report
// serializes as the cell's telemetry block.
#pragma once

#include <functional>
#include <memory>

#include "exp/report.hpp"
#include "exp/spec.hpp"
#include "routing/route_cache.hpp"
#include "telemetry/telemetry.hpp"
#include "util/audit.hpp"
#include "util/cancel.hpp"

namespace pnet::exp {

/// What a trial body sees: the cell's spec, the trial index within the
/// cell, and the deterministic per-trial seed every random choice of the
/// trial must derive from. `route_cache` is the cell's shared compiled
/// route store: every trial of a cell runs the same topology, so path
/// computation is done once and reused across trials and worker threads
/// (entries are pure functions of (net, query) — results stay bit-identical
/// to private caching; see routing::RouteCache). Custom trial functions
/// that mutate link fault state must build a private cache instead.
struct TrialContext {
  const ExperimentSpec& spec;
  int trial;
  std::uint64_t seed;
  std::shared_ptr<routing::RouteCache> route_cache;
  /// Per-trial instrumentation request (sampling interval, tracing).
  /// Disabled by default; custom trial bodies are free to honour it via
  /// make_telemetry/fold_telemetry like the built-in engines do.
  telemetry::Config telemetry{};
  /// Cooperative-cancellation token for this trial. Inert by default; the
  /// runner arms it with the --trial-timeout / run-deadline watchdogs.
  /// Built-in engines poll it and throw TrialCancelled; custom trial
  /// bodies should poll `cancel.cancelled()` in their long loops (or call
  /// throw_if_cancelled) to honour timeouts.
  util::CancelToken cancel{};
  /// When true, built-in engines attach an invariant auditor and raise
  /// util::InvariantViolation at end of trial on any breach.
  bool audit = false;
  /// Packet-engine shard workers (SimHarness::Options::sim_threads):
  /// 0 = the serial engine, >= 1 = the plane-sharded engine with that many
  /// worker threads (results are byte-identical across all values >= 1).
  /// Deliberately NOT part of ExperimentSpec: like the runner's thread
  /// count, it must not perturb spec hashes or canonical JSON.
  int sim_threads = 0;
};

using TrialFn = std::function<TrialResult(const TrialContext&)>;

/// Cell-level inputs an Engine::run invocation shares across its trials.
struct EngineContext {
  /// Null = the engine builds a private cache per cell.
  std::shared_ptr<routing::RouteCache> route_cache{};
  telemetry::Config telemetry{};
  /// Shared across every trial of the cell (no per-trial watchdog here;
  /// that is the runner's job — this covers direct Engine::run callers).
  util::CancelToken cancel{};
  bool audit = false;
  /// Forwarded into every TrialContext (see its sim_threads field).
  int sim_threads = 0;
};

/// Execution strategy for one experiment cell's trials.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Runs every trial of `spec` sequentially (trial t seeded with
  /// util::job_seed(spec.seed, t)) and assembles the CellResult. The
  /// Runner bypasses this to fan (cell, trial) jobs over threads, calling
  /// run_trial directly — results are identical by the determinism
  /// contract.
  [[nodiscard]] virtual CellResult run(const ExperimentSpec& spec,
                                       const EngineContext& ctx);

  /// One trial. Must be thread-safe across distinct contexts: the runner
  /// calls this concurrently from its worker pool.
  [[nodiscard]] virtual TrialResult run_trial(const TrialContext& ctx) = 0;
};

/// core::SimHarness over the packet simulator (src/sim).
class PacketEngine final : public Engine {
 public:
  [[nodiscard]] TrialResult run_trial(const TrialContext& ctx) override;
};

/// fsim::FluidSimulator — flow-level max-min rates, 100x+ faster.
class FluidEngine final : public Engine {
 public:
  [[nodiscard]] TrialResult run_trial(const TrialContext& ctx) override;
};

/// Wraps a bench-supplied trial function (LP studies, fault timelines,
/// cost models...) in the Engine interface.
class CustomEngine final : public Engine {
 public:
  explicit CustomEngine(TrialFn fn) : fn_(std::move(fn)) {}
  [[nodiscard]] TrialResult run_trial(const TrialContext& ctx) override {
    return fn_(ctx);
  }

 private:
  TrialFn fn_;
};

/// Factory: resolves a spec's EngineKind. kCustom requires `fn`; passing a
/// fn with a built-in kind also wraps it (the fn overrides the built-in
/// body, matching the Runner's historical Cell{spec, fn} semantics).
/// Throws std::invalid_argument for kCustom without a fn.
[[nodiscard]] std::unique_ptr<Engine> make_engine(EngineKind kind,
                                                  TrialFn fn = {});

/// Throws TrialCancelled when `cancel` has fired — Reason::kDeadline maps
/// to TrialErrorKind::kTimeout (the per-trial watchdog), anything else to
/// kCancelled (run deadline / external cancel). The messages carry no
/// wall-clock values, keeping error reports deterministic. No-op
/// otherwise; custom trial bodies can call this at loop boundaries.
void throw_if_cancelled(const util::CancelToken& cancel);

/// Builds the per-trial telemetry block a TrialContext asks for, or null
/// when instrumentation is disabled (the zero-overhead path).
[[nodiscard]] std::shared_ptr<telemetry::Telemetry> make_telemetry(
    const telemetry::Config& config);

/// Folds a trial's telemetry into its TrialResult: sampler series become
/// samples["tm/<name>"] (plus the shared time axis samples["tm/t_us"]),
/// registry counters and gauges become metrics["tm/<name>"], and a
/// non-empty trace is attached as TrialResult::trace. Null-safe.
void fold_telemetry(const std::shared_ptr<telemetry::Telemetry>& telemetry,
                    TrialResult& result);

}  // namespace pnet::exp
