// Deterministic parallel experiment runner: the generalization of PR 2's
// fsim::run_sweep to both engines and to whole experiment grids.
//
// A bench queues cells (ExperimentSpec + optional custom trial function);
// the runner resolves each cell's EngineKind to an exp::Engine, flattens
// every (cell, trial) pair into one job list, fans the jobs over OS
// threads via util::parallel_map, and reassembles CellResults in
// submission order. Each trial is fully self-contained — its own topology,
// simulator and Rng, seeded with util::job_seed(cell seed, trial index) —
// so merged results are bit-identical for any --threads value;
// tests/exp_test.cpp locks the property in for both engines.
#pragma once

#include <memory>
#include <vector>

#include "exp/engine.hpp"
#include "exp/report.hpp"
#include "exp/spec.hpp"
#include "routing/route_cache.hpp"

namespace pnet::exp {

/// One queued experiment cell. With no fn, the spec's engine must be
/// kPacket or kFsim and exp::make_engine supplies the built-in trial body;
/// with a fn, the function owns the trial (LP solves, fault timelines,
/// cost models...) but still runs under the runner's seeding and fan-out.
struct Cell {
  ExperimentSpec spec;
  TrialFn fn;
};

class Runner {
 public:
  /// `threads`: worker threads for the (cell, trial) fan-out; 0 = all
  /// hardware threads.
  explicit Runner(int threads = 0) : threads_(threads) {}

  [[nodiscard]] int threads() const { return threads_; }

  /// Per-trial instrumentation request forwarded to every cell's engine
  /// via TrialContext::telemetry (off by default). Enabling the sampler
  /// or trace does not disturb the determinism contract: sampler series
  /// are pure functions of (spec, trial seed).
  void set_telemetry(const telemetry::Config& config) {
    telemetry_ = config;
  }
  [[nodiscard]] const telemetry::Config& telemetry() const {
    return telemetry_;
  }

  /// Runs every trial of every cell. Throws std::invalid_argument if any
  /// spec fails validation or a custom-engine cell lacks a function.
  [[nodiscard]] std::vector<CellResult> run(
      const std::vector<Cell>& cells) const;

  /// Single-cell convenience.
  [[nodiscard]] CellResult run_cell(Cell cell) const;

  /// Built-in trial bodies, usable directly from custom functions that
  /// want the standard run plus extra instrumentation. Thin wrappers over
  /// PacketEngine / FluidEngine (exp/engine.hpp).
  static TrialResult packet_trial(const TrialContext& ctx);
  static TrialResult fsim_trial(const TrialContext& ctx);

 private:
  int threads_;
  telemetry::Config telemetry_{};
};

}  // namespace pnet::exp
