// Deterministic parallel experiment runner: the generalization of PR 2's
// fsim::run_sweep to both engines and to whole experiment grids.
//
// A bench queues cells (ExperimentSpec + optional custom trial function);
// the runner resolves each cell's EngineKind to an exp::Engine, flattens
// every (cell, trial) pair into one job list, fans the jobs over OS
// threads via util::parallel_map, and reassembles CellResults in
// submission order. Each trial is fully self-contained — its own topology,
// simulator and Rng, seeded with util::job_seed(cell seed, trial index) —
// so merged results are bit-identical for any --threads value;
// tests/exp_test.cpp locks the property in for both engines.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exp/engine.hpp"
#include "exp/report.hpp"
#include "exp/spec.hpp"
#include "routing/route_cache.hpp"

namespace pnet::exp {

/// One queued experiment cell. With no fn, the spec's engine must be
/// kPacket or kFsim and exp::make_engine supplies the built-in trial body;
/// with a fn, the function owns the trial (LP solves, fault timelines,
/// cost models...) but still runs under the runner's seeding and fan-out.
struct Cell {
  ExperimentSpec spec;
  TrialFn fn;
};

class Runner {
 public:
  /// `threads`: worker threads for the (cell, trial) fan-out; 0 = all
  /// hardware threads.
  explicit Runner(int threads = 0) : threads_(threads) {}

  [[nodiscard]] int threads() const { return threads_; }

  /// Per-trial instrumentation request forwarded to every cell's engine
  /// via TrialContext::telemetry (off by default). Enabling the sampler
  /// or trace does not disturb the determinism contract: sampler series
  /// are pure functions of (spec, trial seed).
  void set_telemetry(const telemetry::Config& config) {
    telemetry_ = config;
  }
  [[nodiscard]] const telemetry::Config& telemetry() const {
    return telemetry_;
  }

  /// Per-trial wall-clock budget in seconds; <= 0 (default) disables the
  /// watchdog. A trial past its budget is cancelled cooperatively and
  /// filed as TrialError{kTimeout} (retried when retries() > 0).
  void set_trial_timeout(double seconds) { trial_timeout_s_ = seconds; }
  [[nodiscard]] double trial_timeout() const { return trial_timeout_s_; }

  /// Whole-run wall-clock deadline in seconds from run() entry; <= 0
  /// (default) disables. Trials cut off by it are TrialError{kCancelled}
  /// and never retried (the run is over).
  void set_run_deadline(double seconds) { run_deadline_s_ = seconds; }
  [[nodiscard]] double run_deadline() const { return run_deadline_s_; }

  /// Re-run budget for failed trials, with the same seed (determinism
  /// contract intact: a retry that succeeds produces the exact result the
  /// first attempt should have). Only kException and kTimeout retry —
  /// kInvariant is deterministic and kCancelled means the run is over.
  void set_retries(int retries) { retries_ = retries; }
  [[nodiscard]] int retries() const { return retries_; }

  /// Journals completed (cell, trial) results to `path` and, when the
  /// file already holds entries for these specs, resumes by skipping the
  /// finished work. Empty (default) disables. See exp/checkpoint.hpp.
  void set_checkpoint(std::string path) { checkpoint_ = std::move(path); }
  [[nodiscard]] const std::string& checkpoint() const { return checkpoint_; }

  /// Attaches the invariant auditor to every built-in trial; breaches
  /// surface as TrialError{kInvariant} (never retried).
  void set_audit(bool audit) { audit_ = audit; }
  [[nodiscard]] bool audit() const { return audit_; }

  /// Packet-engine shard workers per trial (see TrialContext::sim_threads):
  /// 0 = serial engine, >= 1 = plane-sharded engine. Orthogonal to
  /// `threads` (the trial fan-out); results are byte-identical across
  /// every sim_threads value >= 1.
  void set_sim_threads(int sim_threads) { sim_threads_ = sim_threads; }
  [[nodiscard]] int sim_threads() const { return sim_threads_; }

  /// Default control-plane option (the --controller flag) merged into every
  /// queued cell whose spec leaves controller.mode at kOff; cells that set
  /// their own mode win. The merge happens before validation, so the
  /// effective config participates in spec hashes, checkpoint keys, and
  /// report JSON exactly as if the bench had set it on the spec itself.
  void set_controller(const control::ControllerConfig& config) {
    controller_ = config;
  }
  [[nodiscard]] const control::ControllerConfig& controller() const {
    return controller_;
  }

  /// Runs every trial of every cell. Throws std::invalid_argument if any
  /// spec fails validation or a custom-engine cell lacks a function.
  /// Per-trial failures do NOT throw: they are isolated into the owning
  /// cell's CellResult::errors (in trial order), healthy trials keep
  /// merging deterministically, and the caller decides whether a partial
  /// cell is fatal (bench --require-complete does).
  [[nodiscard]] std::vector<CellResult> run(
      const std::vector<Cell>& cells) const;

  /// Single-cell convenience.
  [[nodiscard]] CellResult run_cell(Cell cell) const;

  /// Built-in trial bodies, usable directly from custom functions that
  /// want the standard run plus extra instrumentation. Thin wrappers over
  /// PacketEngine / FluidEngine (exp/engine.hpp).
  static TrialResult packet_trial(const TrialContext& ctx);
  static TrialResult fsim_trial(const TrialContext& ctx);

 private:
  int threads_;
  telemetry::Config telemetry_{};
  double trial_timeout_s_ = 0.0;
  double run_deadline_s_ = 0.0;
  int retries_ = 0;
  std::string checkpoint_;
  bool audit_ = false;
  int sim_threads_ = 0;
  control::ControllerConfig controller_{};
};

}  // namespace pnet::exp
