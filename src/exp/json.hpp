// Deterministic streaming JSON writer for the experiment reports.
//
// No external JSON dependency exists in the container, and the reports
// only need writing, never parsing — so this is a ~100-line emitter with
// the one property the determinism contract needs: identical inputs
// produce byte-identical text. Keys are emitted in call order (callers
// iterate ordered containers), doubles are printed with the shortest
// representation that round-trips (strtod(print(v)) == v), and there is no
// locale, pointer, or time dependence anywhere.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pnet::exp {

/// Shortest decimal representation of `v` that parses back to exactly the
/// same double. NaN/inf (not valid JSON) are emitted as null.
std::string json_double(double v);

/// `s` as a JSON string literal, with the mandatory escapes applied.
std::string json_string(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Starts a "key": inside an object; follow with a value or a begin_*.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }

  /// key(name) + value(v) in one call.
  template <class T>
  JsonWriter& field(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  /// The finished document. Asserts balance in debug builds only.
  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void comma();

  std::string out_;
  /// One bool per open container: true once the first element was written.
  std::vector<bool> has_elements_;
  bool pending_key_ = false;
};

}  // namespace pnet::exp
