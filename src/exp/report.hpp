// Structured experiment results: per-trial metrics, per-cell merges, and
// the schema-versioned JSON report every bench can emit next to its
// TextTables (--json=PATH).
//
// Determinism contract: everything except the `runtime` blocks is a pure
// function of the ExperimentSpec (trials merge in trial order, maps
// iterate in key order, doubles print shortest-round-trip), so
// Report::to_json(/*with_runtime=*/false) is byte-identical across
// repeated runs and across --threads values. Wall-clock and events/sec
// live only in the runtime blocks, which with_runtime=false omits —
// that is what the CI bit-identity diff and the ctest determinism cases
// compare.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exp/spec.hpp"
#include "telemetry/trace.hpp"

namespace pnet::exp {

/// Current JSON report schema. Bump when the report layout changes shape
/// (adding optional fields does not count).
inline constexpr int kReportSchemaVersion = 1;

/// Summary statistics of one sample set, for figure series and reports.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(const std::vector<double>& samples);

/// What one trial of one cell produced. Custom trial functions fill in
/// whatever applies; the built-in engines fill everything. `wall_s` and
/// `runtime` are the only fields allowed to differ between identical runs
/// — everything else must be a pure function of (spec, trial seed).
struct TrialResult {
  /// Flow completion times in microseconds, the primary sample set.
  std::vector<double> fct_us;
  std::uint64_t flows_started = 0;
  std::uint64_t flows_finished = 0;
  double delivered_bytes = 0.0;
  /// Simulated time elapsed, seconds.
  double sim_seconds = 0.0;
  /// Engine events processed (EventQueue dispatches / fluid admissions +
  /// completions); events / wall_s is the runner throughput metric.
  std::uint64_t events = 0;
  /// Named scalar metrics (deterministic; merged across trials by key).
  std::map<std::string, double> metrics;
  /// Named sample sets beyond fct_us (e.g. a goodput timeline).
  std::map<std::string, std::vector<double>> samples;
  /// Non-deterministic extras (sub-measured wall-clocks, speedups...).
  /// Reported only in the runtime block.
  std::map<std::string, double> runtime;
  /// Wall-clock of the trial, filled by the runner.
  double wall_s = 0.0;
  /// Span/instant events recorded by the trial's telemetry, when tracing
  /// was requested. Never part of to_json — exported separately by
  /// Report::write_trace.
  std::shared_ptr<const telemetry::Trace> trace;

  [[nodiscard]] std::uint64_t unfinished_flows() const {
    return flows_started - flows_finished;
  }
};

/// One cell's spec plus its trials (in trial order) and merged views.
struct CellResult {
  ExperimentSpec spec;
  std::vector<TrialResult> trials;
  /// Cell-level non-deterministic extras (e.g. the shared route cache's
  /// hit/miss/compute-time counters, which aggregate across trials).
  /// Reported only in the cell's runtime block.
  std::map<std::string, double> runtime;

  /// All trials' FCT samples concatenated in trial order.
  [[nodiscard]] std::vector<double> merged_fct_us() const;
  [[nodiscard]] Summary fct() const { return summarize(merged_fct_us()); }
  [[nodiscard]] std::vector<double> merged_samples(
      const std::string& key) const;
  /// Per-trial values of a scalar metric, in trial order.
  [[nodiscard]] std::vector<double> metric_values(
      const std::string& key) const;
  /// Summary of a scalar metric across trials.
  [[nodiscard]] Summary metric(const std::string& key) const {
    return summarize(metric_values(key));
  }

  [[nodiscard]] std::uint64_t flows_started() const;
  [[nodiscard]] std::uint64_t flows_finished() const;
  [[nodiscard]] std::uint64_t unfinished_flows() const {
    return flows_started() - flows_finished();
  }
  [[nodiscard]] double delivered_bytes() const;
  [[nodiscard]] double sim_seconds() const;
  [[nodiscard]] std::uint64_t events() const;
  /// Sum of trial wall-clocks (what the trials cost, not elapsed time).
  [[nodiscard]] double wall_s() const;
  [[nodiscard]] double events_per_sec() const;
};

/// The whole bench run: cells in submission order plus run-level runtime.
class Report {
 public:
  explicit Report(std::string bench_name) : bench_(std::move(bench_name)) {}

  void add(CellResult cell) { cells_.push_back(std::move(cell)); }
  [[nodiscard]] const std::vector<CellResult>& cells() const {
    return cells_;
  }
  [[nodiscard]] const std::string& bench() const { return bench_; }

  [[nodiscard]] std::uint64_t total_unfinished_flows() const;

  /// Elapsed wall-clock and thread count of the runner invocation(s), for
  /// the run-level runtime block.
  void record_runtime(double elapsed_s, int threads) {
    elapsed_s_ += elapsed_s;
    threads_ = threads;
  }

  /// The JSON document. with_runtime=false omits every wall-clock-derived
  /// field, making the output a pure function of the specs + seeds.
  [[nodiscard]] std::string to_json(bool with_runtime) const;

  /// Writes to_json(with_runtime) to `path` ("-" = stdout). Returns false
  /// (with a message on stderr) if the file cannot be written.
  bool write_json(const std::string& path, bool with_runtime) const;

  /// Exports every trial trace in the report: Chrome trace_event JSON
  /// (one pid lane per cell, one tid per trial), or the compact binary
  /// format when `path` ends in ".bin" (all traces merged). Returns false
  /// on write failure; an empty report writes a valid empty trace.
  bool write_trace(const std::string& path) const;

 private:
  std::string bench_;
  std::vector<CellResult> cells_;
  double elapsed_s_ = 0.0;
  int threads_ = 0;
};

}  // namespace pnet::exp
