// Structured experiment results: per-trial metrics, per-cell merges, and
// the schema-versioned JSON report every bench can emit next to its
// TextTables (--json=PATH).
//
// Determinism contract: everything except the `runtime` blocks is a pure
// function of the ExperimentSpec (trials merge in trial order, maps
// iterate in key order, doubles print shortest-round-trip), so
// Report::to_json(/*with_runtime=*/false) is byte-identical across
// repeated runs and across --threads values. Wall-clock and events/sec
// live only in the runtime blocks, which with_runtime=false omits —
// that is what the CI bit-identity diff and the ctest determinism cases
// compare.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/spec.hpp"
#include "telemetry/trace.hpp"

namespace pnet::exp {

/// Current JSON report schema. Bump when the report layout changes shape
/// (adding optional fields does not count).
inline constexpr int kReportSchemaVersion = 1;

/// Summary statistics of one sample set, for figure series and reports.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(const std::vector<double>& samples);

/// Why a trial produced no result. The taxonomy is part of the report
/// schema (serialized as strings, see to_string) and of the retry policy:
/// kException and kTimeout are retriable (environmental), kInvariant is
/// not (deterministic — the same seed breaks the same law again), and
/// kCancelled means the whole run's deadline fired, so retrying is moot.
enum class TrialErrorKind : std::uint8_t {
  /// The trial function threw a std::exception (or anything else).
  kException,
  /// The per-trial wall-clock budget (--trial-timeout) expired.
  kTimeout,
  /// The run-level deadline or an external cancel stopped the trial.
  kCancelled,
  /// The invariant auditor found a broken conservation law.
  kInvariant,
};

[[nodiscard]] const char* to_string(TrialErrorKind kind);

/// One failed trial, as reported in the cell's `errors` block. `what`
/// must be deterministic (no wall-clock values) so error-bearing reports
/// still diff byte-identically across runs and --threads values.
struct TrialError {
  TrialErrorKind kind = TrialErrorKind::kException;
  std::string what;
  int cell = 0;
  int trial = 0;
  std::uint64_t seed = 0;
};

/// Thrown out of an engine when the trial's CancelToken fired mid-run;
/// carries which taxonomy kind the token's reason maps to (kTimeout for
/// the per-trial watchdog, kCancelled for the run deadline).
class TrialCancelled : public std::runtime_error {
 public:
  TrialCancelled(TrialErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  [[nodiscard]] TrialErrorKind kind() const { return kind_; }

 private:
  TrialErrorKind kind_;
};

/// What one trial of one cell produced. Custom trial functions fill in
/// whatever applies; the built-in engines fill everything. `wall_s` and
/// `runtime` are the only fields allowed to differ between identical runs
/// — everything else must be a pure function of (spec, trial seed).
struct TrialResult {
  /// Flow completion times in microseconds, the primary sample set.
  std::vector<double> fct_us;
  std::uint64_t flows_started = 0;
  std::uint64_t flows_finished = 0;
  double delivered_bytes = 0.0;
  /// Simulated time elapsed, seconds.
  double sim_seconds = 0.0;
  /// Engine events processed (EventQueue dispatches / fluid admissions +
  /// completions); events / wall_s is the runner throughput metric.
  std::uint64_t events = 0;
  /// Named scalar metrics (deterministic; merged across trials by key).
  std::map<std::string, double> metrics;
  /// Named sample sets beyond fct_us (e.g. a goodput timeline).
  std::map<std::string, std::vector<double>> samples;
  /// Non-deterministic extras (sub-measured wall-clocks, speedups...).
  /// Reported only in the runtime block.
  std::map<std::string, double> runtime;
  /// Wall-clock of the trial, filled by the runner.
  double wall_s = 0.0;
  /// Span/instant events recorded by the trial's telemetry, when tracing
  /// was requested. Never part of to_json — exported separately by
  /// Report::write_trace.
  std::shared_ptr<const telemetry::Trace> trace;

  [[nodiscard]] std::uint64_t unfinished_flows() const {
    return flows_started - flows_finished;
  }
};

/// One cell's spec plus its trials (in trial order) and merged views.
struct CellResult {
  ExperimentSpec spec;
  std::vector<TrialResult> trials;
  /// Trials that produced no result, in trial order. Healthy trials stay
  /// in `trials` (still in trial order), so merged metrics cover exactly
  /// the surviving work. Serialized as the cell's `errors` JSON block —
  /// emitted only when non-empty, so clean-run reports are unchanged.
  std::vector<TrialError> errors;
  /// Cell-level non-deterministic extras (e.g. the shared route cache's
  /// hit/miss/compute-time counters, which aggregate across trials).
  /// Reported only in the cell's runtime block.
  std::map<std::string, double> runtime;

  /// All trials' FCT samples concatenated in trial order.
  [[nodiscard]] std::vector<double> merged_fct_us() const;
  [[nodiscard]] Summary fct() const { return summarize(merged_fct_us()); }
  [[nodiscard]] std::vector<double> merged_samples(
      const std::string& key) const;
  /// Per-trial values of a scalar metric, in trial order.
  [[nodiscard]] std::vector<double> metric_values(
      const std::string& key) const;
  /// Summary of a scalar metric across trials.
  [[nodiscard]] Summary metric(const std::string& key) const {
    return summarize(metric_values(key));
  }

  [[nodiscard]] std::uint64_t flows_started() const;
  [[nodiscard]] std::uint64_t flows_finished() const;
  [[nodiscard]] std::uint64_t unfinished_flows() const {
    return flows_started() - flows_finished();
  }
  [[nodiscard]] double delivered_bytes() const;
  [[nodiscard]] double sim_seconds() const;
  [[nodiscard]] std::uint64_t events() const;
  /// Sum of trial wall-clocks (what the trials cost, not elapsed time).
  [[nodiscard]] double wall_s() const;
  [[nodiscard]] double events_per_sec() const;
};

/// The whole bench run: cells in submission order plus run-level runtime.
class Report {
 public:
  explicit Report(std::string bench_name) : bench_(std::move(bench_name)) {}

  void add(CellResult cell) { cells_.push_back(std::move(cell)); }
  [[nodiscard]] const std::vector<CellResult>& cells() const {
    return cells_;
  }
  [[nodiscard]] const std::string& bench() const { return bench_; }

  [[nodiscard]] std::uint64_t total_unfinished_flows() const;
  /// Failed trials across every cell (--require-complete's other check).
  [[nodiscard]] std::uint64_t total_trial_errors() const;

  /// Elapsed wall-clock, runner thread count, and packet-engine shard
  /// worker count of the runner invocation(s), for the run-level runtime
  /// block. `sim_threads` lives here (not in any spec) so it can never
  /// perturb canonical (--json without runtime) report bytes.
  void record_runtime(double elapsed_s, int threads, int sim_threads = 0) {
    elapsed_s_ += elapsed_s;
    threads_ = threads;
    sim_threads_ = sim_threads;
  }

  /// The JSON document. with_runtime=false omits every wall-clock-derived
  /// field, making the output a pure function of the specs + seeds.
  [[nodiscard]] std::string to_json(bool with_runtime) const;

  /// Writes to_json(with_runtime) to `path` ("-" = stdout). Returns false
  /// (with a message on stderr) if the file cannot be written.
  bool write_json(const std::string& path, bool with_runtime) const;

  /// Exports every trial trace in the report: Chrome trace_event JSON
  /// (one pid lane per cell, one tid per trial), or the compact binary
  /// format when `path` ends in ".bin" (all traces merged). Returns false
  /// on write failure; an empty report writes a valid empty trace.
  bool write_trace(const std::string& path) const;

 private:
  std::string bench_;
  std::vector<CellResult> cells_;
  double elapsed_s_ = 0.0;
  int threads_ = 0;
  int sim_threads_ = 0;
};

}  // namespace pnet::exp
