#include "exp/runner.hpp"

#include <chrono>
#include <stdexcept>

#include "util/parallel.hpp"

namespace pnet::exp {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TrialResult Runner::packet_trial(const TrialContext& ctx) {
  return PacketEngine().run_trial(ctx);
}

TrialResult Runner::fsim_trial(const TrialContext& ctx) {
  return FluidEngine().run_trial(ctx);
}

std::vector<CellResult> Runner::run(const std::vector<Cell>& cells) const {
  struct Job {
    std::size_t cell;
    int trial;
  };
  std::vector<Job> jobs;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const auto& cell = cells[c];
    const std::string problem = cell.spec.validate();
    if (!problem.empty()) {
      throw std::invalid_argument("exp::Runner: cell '" + cell.spec.name +
                                  "': " + problem);
    }
    if (!cell.fn && cell.spec.engine == EngineKind::kCustom) {
      throw std::invalid_argument("exp::Runner: cell '" + cell.spec.name +
                                  "' has engine=custom but no trial "
                                  "function");
    }
    for (int t = 0; t < cell.spec.trials; ++t) {
      jobs.push_back({c, t});
    }
  }

  // Resolve each cell's engine once; run_trial is required to be
  // thread-safe across distinct contexts, so one instance serves every
  // worker thread.
  std::vector<std::unique_ptr<Engine>> engines;
  engines.reserve(cells.size());
  for (const auto& cell : cells) {
    engines.push_back(make_engine(cell.spec.engine, cell.fn));
  }

  // One route cache per cell, shared by all its trials (and worker
  // threads): trials of a cell build identical topologies, so path
  // computation runs once per distinct query. Safe because the built-in
  // trial bodies never mutate link fault state, and cached content is a
  // pure function of (net, query) — results stay bit-identical for any
  // --threads value.
  std::vector<std::shared_ptr<routing::RouteCache>> caches;
  caches.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    caches.push_back(std::make_shared<routing::RouteCache>());
  }

  auto trial_results = util::parallel_map(
      jobs,
      [this, &cells, &engines, &caches](const Job& job) {
        const Cell& cell = cells[job.cell];
        const TrialContext ctx{cell.spec, job.trial,
                               util::job_seed(cell.spec.seed,
                                              static_cast<std::uint64_t>(
                                                  job.trial)),
                               caches[job.cell], telemetry_};
        const double wall_start = now_seconds();
        TrialResult result = engines[job.cell]->run_trial(ctx);
        result.wall_s = now_seconds() - wall_start;
        return result;
      },
      threads_);

  std::vector<CellResult> results(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    results[c].spec = cells[c].spec;
    results[c].trials.reserve(static_cast<std::size_t>(cells[c].spec.trials));
  }
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    results[jobs[j].cell].trials.push_back(std::move(trial_results[j]));
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const routing::RouteCacheStats stats = caches[c]->stats();
    if (stats.hits + stats.misses == 0) continue;  // cell never routed
    auto& runtime = results[c].runtime;
    runtime["route_cache_hits"] = static_cast<double>(stats.hits);
    runtime["route_cache_misses"] = static_cast<double>(stats.misses);
    runtime["route_cache_invalidations"] =
        static_cast<double>(stats.invalidations);
    runtime["route_cache_compute_ns"] =
        static_cast<double>(stats.compute_ns);
    runtime["route_cache_arena_bytes"] =
        static_cast<double>(stats.arena_bytes);
    runtime["route_cache_entries"] = static_cast<double>(stats.entries);
    runtime["route_cache_paths"] = static_cast<double>(stats.paths);
  }
  return results;
}

CellResult Runner::run_cell(Cell cell) const {
  std::vector<Cell> cells;
  cells.push_back(std::move(cell));
  auto results = run(cells);
  return std::move(results.front());
}

}  // namespace pnet::exp
