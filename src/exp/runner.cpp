#include "exp/runner.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "exp/checkpoint.hpp"
#include "util/audit.hpp"
#include "util/cancel.hpp"
#include "util/parallel.hpp"

namespace pnet::exp {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TrialResult Runner::packet_trial(const TrialContext& ctx) {
  return PacketEngine().run_trial(ctx);
}

TrialResult Runner::fsim_trial(const TrialContext& ctx) {
  return FluidEngine().run_trial(ctx);
}

std::vector<CellResult> Runner::run(const std::vector<Cell>& queued) const {
  // Controller default-merge (set_controller): cells that left the mode at
  // kOff inherit the runner-wide config on a copy, BEFORE validation and
  // spec hashing, so checkpoints and report JSON see the effective config.
  // With no runner default (the common case) `queued` is used untouched —
  // no copy, and byte-identical behavior to builds predating the merge.
  std::vector<Cell> merged;
  if (controller_.active()) {
    merged = queued;
    for (Cell& cell : merged) {
      if (!cell.spec.controller.active()) cell.spec.controller = controller_;
    }
  }
  const std::vector<Cell>& cells = controller_.active() ? merged : queued;
  struct Job {
    std::size_t cell;
    int trial;
  };
  std::vector<Job> jobs;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const auto& cell = cells[c];
    const std::string problem = cell.spec.validate();
    if (!problem.empty()) {
      throw std::invalid_argument("exp::Runner: cell '" + cell.spec.name +
                                  "': " + problem);
    }
    if (!cell.fn && cell.spec.engine == EngineKind::kCustom) {
      throw std::invalid_argument("exp::Runner: cell '" + cell.spec.name +
                                  "' has engine=custom but no trial "
                                  "function");
    }
    for (int t = 0; t < cell.spec.trials; ++t) {
      jobs.push_back({c, t});
    }
  }

  // Resolve each cell's engine once; run_trial is required to be
  // thread-safe across distinct contexts, so one instance serves every
  // worker thread.
  std::vector<std::unique_ptr<Engine>> engines;
  engines.reserve(cells.size());
  for (const auto& cell : cells) {
    engines.push_back(make_engine(cell.spec.engine, cell.fn));
  }

  // One route cache per cell, shared by all its trials (and worker
  // threads): trials of a cell build identical topologies, so path
  // computation runs once per distinct query. Safe because the built-in
  // trial bodies never mutate link fault state, and cached content is a
  // pure function of (net, query) — results stay bit-identical for any
  // --threads value.
  std::vector<std::shared_ptr<routing::RouteCache>> caches;
  caches.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    caches.push_back(std::make_shared<routing::RouteCache>());
  }

  // Checkpoint–resume: load the journal (if any) and key each cell by its
  // spec hash. Lookups happen inside the worker lambda; records append as
  // trials finish, so a kill at any point loses at most in-flight work.
  std::unique_ptr<Checkpoint> checkpoint;
  std::vector<std::uint64_t> spec_hashes(cells.size(), 0);
  if (!checkpoint_.empty()) {
    checkpoint = std::make_unique<Checkpoint>(checkpoint_);
    for (std::size_t c = 0; c < cells.size(); ++c) {
      spec_hashes[c] = Checkpoint::hash_spec(cells[c].spec);
    }
  }

  // Watchdog deadlines, fixed at run() entry. The run deadline cancels
  // (kCancelled — the sweep is over); the per-trial budget times out
  // (kTimeout — that one trial was slow). CancelToken::set_deadline keeps
  // the earlier of the two, with its reason.
  const bool run_deadline_armed = run_deadline_s_ > 0.0;
  const util::CancelToken::Clock::time_point run_deadline_at =
      util::CancelToken::Clock::now() +
      std::chrono::duration_cast<util::CancelToken::Clock::duration>(
          std::chrono::duration<double>(
              run_deadline_armed ? run_deadline_s_ : 0.0));

  // A trial either produced a result or a taxonomy-classified error —
  // never an escaped exception, so one bad trial cannot abort the sweep.
  struct Outcome {
    TrialResult result;
    TrialError error;
    bool failed = false;
  };

  auto outcomes = util::parallel_map(
      jobs,
      [this, &cells, &engines, &caches, &checkpoint, &spec_hashes,
       run_deadline_armed, run_deadline_at](const Job& job) {
        const Cell& cell = cells[job.cell];
        const std::uint64_t seed = util::job_seed(
            cell.spec.seed, static_cast<std::uint64_t>(job.trial));
        Outcome out;
        out.error.cell = static_cast<int>(job.cell);
        out.error.trial = job.trial;
        out.error.seed = seed;

        if (checkpoint != nullptr) {
          const TrialResult* done =
              checkpoint->find(spec_hashes[job.cell], job.trial);
          if (done != nullptr) {
            out.result = *done;  // resumed: skip the work entirely
            return out;
          }
        }
        if (run_deadline_armed &&
            util::CancelToken::Clock::now() >= run_deadline_at) {
          out.failed = true;
          out.error.kind = TrialErrorKind::kCancelled;
          out.error.what = "run deadline expired before trial started";
          return out;
        }

        const int attempts = 1 + std::max(0, retries_);
        for (int attempt = 0; attempt < attempts; ++attempt) {
          util::CancelToken token;
          if (trial_timeout_s_ > 0.0 || run_deadline_armed) {
            token = util::CancelToken::armed();
            if (trial_timeout_s_ > 0.0) {
              token.set_deadline(
                  util::CancelToken::Clock::now() +
                      std::chrono::duration_cast<
                          util::CancelToken::Clock::duration>(
                          std::chrono::duration<double>(trial_timeout_s_)),
                  util::CancelToken::Reason::kDeadline);
            }
            if (run_deadline_armed) {
              token.set_deadline(run_deadline_at,
                                 util::CancelToken::Reason::kCancelled);
            }
          }
          const TrialContext ctx{cell.spec, job.trial, seed,
                                 caches[job.cell], telemetry_, token,
                                 audit_, sim_threads_};
          try {
            const double wall_start = now_seconds();
            out.result = engines[job.cell]->run_trial(ctx);
            out.result.wall_s = now_seconds() - wall_start;
            if (attempt > 0) {
              // Runtime block only: which attempt finally succeeded.
              out.result.runtime["retries"] = attempt;
            }
            out.failed = false;
            if (checkpoint != nullptr) {
              checkpoint->record(spec_hashes[job.cell], job.trial,
                                 out.result);
            }
            return out;
          } catch (const TrialCancelled& e) {
            out.failed = true;
            out.error.kind = e.kind();
            out.error.what = e.what();
            if (e.kind() == TrialErrorKind::kCancelled) break;  // run over
          } catch (const util::InvariantViolation& e) {
            out.failed = true;
            out.error.kind = TrialErrorKind::kInvariant;
            out.error.what = e.what();
            break;  // deterministic: the same seed breaks the same law
          } catch (const std::exception& e) {
            out.failed = true;
            out.error.kind = TrialErrorKind::kException;
            out.error.what = e.what();
          } catch (...) {
            out.failed = true;
            out.error.kind = TrialErrorKind::kException;
            out.error.what = "unknown exception";
          }
        }
        return out;
      },
      threads_);

  std::vector<CellResult> results(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    results[c].spec = cells[c].spec;
    results[c].trials.reserve(static_cast<std::size_t>(cells[c].spec.trials));
  }
  // Job order is trial order within each cell, so both the surviving
  // trials and the errors land in deterministic (trial) order regardless
  // of thread interleaving.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    auto& cell_result = results[jobs[j].cell];
    if (outcomes[j].failed) {
      cell_result.errors.push_back(std::move(outcomes[j].error));
    } else {
      cell_result.trials.push_back(std::move(outcomes[j].result));
    }
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const routing::RouteCacheStats stats = caches[c]->stats();
    if (stats.hits + stats.misses == 0) continue;  // cell never routed
    auto& runtime = results[c].runtime;
    runtime["route_cache_hits"] = static_cast<double>(stats.hits);
    runtime["route_cache_misses"] = static_cast<double>(stats.misses);
    runtime["route_cache_invalidations"] =
        static_cast<double>(stats.invalidations);
    runtime["route_cache_compute_ns"] =
        static_cast<double>(stats.compute_ns);
    runtime["route_cache_arena_bytes"] =
        static_cast<double>(stats.arena_bytes);
    runtime["route_cache_entries"] = static_cast<double>(stats.entries);
    runtime["route_cache_paths"] = static_cast<double>(stats.paths);
  }
  return results;
}

CellResult Runner::run_cell(Cell cell) const {
  std::vector<Cell> cells;
  cells.push_back(std::move(cell));
  auto results = run(cells);
  return std::move(results.front());
}

}  // namespace pnet::exp
