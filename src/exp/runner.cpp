#include "exp/runner.hpp"

#include <chrono>
#include <stdexcept>

#include "core/harness.hpp"
#include "util/parallel.hpp"
#include "workload/patterns.hpp"

namespace pnet::exp {

namespace {

std::vector<workload::HostPair> pattern_pairs(
    const WorkloadSpec& workload, const topo::ParallelNetwork& net,
    Rng& rng) {
  switch (workload.pattern) {
    case WorkloadSpec::Pattern::kPermutation:
      return workload::permutation_pairs(net.num_hosts(), rng);
    case WorkloadSpec::Pattern::kAllToAll:
      return workload::all_to_all_pairs(net.num_hosts());
    case WorkloadSpec::Pattern::kRackAllToAll:
      return workload::rack_all_to_all_pairs(net);
  }
  return {};
}

SimTime jittered(SimTime base, SimTime jitter, Rng& rng) {
  if (jitter <= 0) return base;
  return base + static_cast<SimTime>(
                    rng.next_below(static_cast<std::uint64_t>(jitter)));
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TrialResult Runner::packet_trial(const TrialContext& ctx) {
  const ExperimentSpec& spec = ctx.spec;
  const WorkloadSpec& wl = spec.workload;
  TrialResult r;
  core::SimHarness harness(spec.topo, spec.policy, spec.sim,
                           ctx.route_cache);
  Rng rng(ctx.seed);
  for (int round = 0; round < wl.rounds; ++round) {
    const SimTime base =
        wl.round_gap > 0 ? round * wl.round_gap : harness.events().now();
    for (const auto& [src, dst] :
         pattern_pairs(wl, harness.net(), rng)) {
      ++r.flows_started;
      harness.starter()(src, dst, wl.flow_bytes,
                        jittered(base, wl.start_jitter, rng),
                        [&r](const sim::FlowRecord& rec) {
                          r.fct_us.push_back(
                              units::to_microseconds(rec.end - rec.start));
                          ++r.flows_finished;
                        });
    }
    if (wl.round_gap == 0) {
      // Back-to-back rounds: drain this round before drawing the next.
      if (spec.deadline > 0) {
        harness.run_until(spec.deadline);
      } else {
        harness.run();
      }
    }
  }
  if (wl.round_gap > 0) {
    if (spec.deadline > 0) {
      harness.run_until(spec.deadline);
    } else {
      harness.run();
    }
  }
  r.delivered_bytes =
      static_cast<double>(harness.factory().total_delivered_bytes());
  r.sim_seconds = units::to_seconds(harness.events().now());
  r.events = harness.events().dispatched();
  return r;
}

TrialResult Runner::fsim_trial(const TrialContext& ctx) {
  const ExperimentSpec& spec = ctx.spec;
  const WorkloadSpec& wl = spec.workload;
  const fsim::FsimConfig config = to_fsim_config(spec.policy, wl.flow_bytes);
  const auto net = topo::build_network(spec.topo);
  TrialResult r;
  Rng rng(ctx.seed);

  auto finish = [&r](fsim::FluidSimulator& fluid) {
    for (double fct : fluid.fct_us()) r.fct_us.push_back(fct);
    r.flows_finished += fluid.results().size();
    r.delivered_bytes += fluid.delivered_bytes();
    r.sim_seconds += units::to_seconds(fluid.now());
    r.events += fluid.events();
  };

  if (wl.round_gap > 0) {
    // Overlapping rounds share one simulator (and its allocator state).
    fsim::FluidSimulator fluid(net, config, ctx.route_cache);
    for (int round = 0; round < wl.rounds; ++round) {
      const SimTime base = round * wl.round_gap;
      for (const auto& [src, dst] : pattern_pairs(wl, net, rng)) {
        ++r.flows_started;
        fluid.add_flow({src, dst, wl.flow_bytes,
                        jittered(base, wl.start_jitter, rng)});
      }
    }
    if (spec.deadline > 0) {
      fluid.run_until(spec.deadline);
    } else {
      fluid.run();
    }
    finish(fluid);
  } else {
    // Back-to-back rounds: a fresh simulator per round, as the packet
    // engine's drained-queue equivalent.
    for (int round = 0; round < wl.rounds; ++round) {
      fsim::FluidSimulator fluid(net, config, ctx.route_cache);
      for (const auto& [src, dst] : pattern_pairs(wl, net, rng)) {
        ++r.flows_started;
        fluid.add_flow({src, dst, wl.flow_bytes,
                        jittered(0, wl.start_jitter, rng)});
      }
      if (spec.deadline > 0) {
        fluid.run_until(spec.deadline);
      } else {
        fluid.run();
      }
      finish(fluid);
    }
  }
  return r;
}

std::vector<CellResult> Runner::run(const std::vector<Cell>& cells) const {
  struct Job {
    std::size_t cell;
    int trial;
  };
  std::vector<Job> jobs;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const auto& cell = cells[c];
    const std::string problem = cell.spec.validate();
    if (!problem.empty()) {
      throw std::invalid_argument("exp::Runner: cell '" + cell.spec.name +
                                  "': " + problem);
    }
    if (!cell.fn && cell.spec.engine == Engine::kCustom) {
      throw std::invalid_argument("exp::Runner: cell '" + cell.spec.name +
                                  "' has engine=custom but no trial "
                                  "function");
    }
    for (int t = 0; t < cell.spec.trials; ++t) {
      jobs.push_back({c, t});
    }
  }

  // One route cache per cell, shared by all its trials (and worker
  // threads): trials of a cell build identical topologies, so path
  // computation runs once per distinct query. Safe because the built-in
  // trial bodies never mutate link fault state, and cached content is a
  // pure function of (net, query) — results stay bit-identical for any
  // --threads value.
  std::vector<std::shared_ptr<routing::RouteCache>> caches;
  caches.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    caches.push_back(std::make_shared<routing::RouteCache>());
  }

  auto trial_results = util::parallel_map(
      jobs,
      [&cells, &caches](const Job& job) {
        const Cell& cell = cells[job.cell];
        const TrialContext ctx{cell.spec, job.trial,
                               util::job_seed(cell.spec.seed,
                                              static_cast<std::uint64_t>(
                                                  job.trial)),
                               caches[job.cell]};
        const double wall_start = now_seconds();
        TrialResult result;
        if (cell.fn) {
          result = cell.fn(ctx);
        } else if (cell.spec.engine == Engine::kPacket) {
          result = packet_trial(ctx);
        } else {
          result = fsim_trial(ctx);
        }
        result.wall_s = now_seconds() - wall_start;
        return result;
      },
      threads_);

  std::vector<CellResult> results(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    results[c].spec = cells[c].spec;
    results[c].trials.reserve(static_cast<std::size_t>(cells[c].spec.trials));
  }
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    results[jobs[j].cell].trials.push_back(std::move(trial_results[j]));
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const routing::RouteCacheStats stats = caches[c]->stats();
    if (stats.hits + stats.misses == 0) continue;  // cell never routed
    auto& runtime = results[c].runtime;
    runtime["route_cache_hits"] = static_cast<double>(stats.hits);
    runtime["route_cache_misses"] = static_cast<double>(stats.misses);
    runtime["route_cache_invalidations"] =
        static_cast<double>(stats.invalidations);
    runtime["route_cache_compute_ns"] =
        static_cast<double>(stats.compute_ns);
    runtime["route_cache_arena_bytes"] =
        static_cast<double>(stats.arena_bytes);
    runtime["route_cache_entries"] = static_cast<double>(stats.entries);
    runtime["route_cache_paths"] = static_cast<double>(stats.paths);
  }
  return results;
}

CellResult Runner::run_cell(Cell cell) const {
  std::vector<Cell> cells;
  cells.push_back(std::move(cell));
  auto results = run(cells);
  return std::move(results.front());
}

}  // namespace pnet::exp
