// Application-level workload drivers on top of the flow layer.
//
// All drivers are decoupled from routing policy through FlowStarter: the
// core library (path selection, section 3.4/4 of the paper) supplies the
// function that actually launches a flow between two hosts; the drivers
// only decide who talks to whom, how much, and when.
#pragma once

#include <functional>
#include <vector>

#include "sim/network.hpp"
#include "util/rng.hpp"

namespace pnet::workload {

/// Launches one transport flow; invokes the callback at completion.
using FlowStarter =
    std::function<void(HostId src, HostId dst, std::uint64_t bytes,
                       SimTime start, sim::FlowFactory::FlowCallback)>;

/// Picks the next destination for a worker on `src`.
using DstPicker = std::function<HostId(HostId src, Rng& rng)>;
/// Picks the next request size.
using SizePicker = std::function<std::uint64_t(Rng& rng)>;

/// Closed-loop request/response driver. Each of the `hosts` runs
/// `concurrent` independent workers; a worker issues a request flow, waits
/// for it, optionally waits for a response flow back (an RPC), records the
/// end-to-end completion time, and immediately issues the next request.
/// Covers the RPC experiments (5.2.1), the trace-driven closed loops (5.3)
/// and the FCT microbenchmark pattern (5.1.2, with concurrent = 1).
class ClosedLoopApp {
 public:
  struct Config {
    int concurrent_per_host = 1;
    /// 0 = pure one-way flows; otherwise an RPC with this response size.
    std::uint64_t response_bytes = 0;
    /// Each worker stops issuing new requests after this many completions.
    int rounds_per_worker = 1;
    std::uint64_t seed = 1;
  };

  ClosedLoopApp(FlowStarter starter, std::vector<HostId> hosts,
                Config config, DstPicker dst_picker, SizePicker size_picker)
      : starter_(std::move(starter)), hosts_(std::move(hosts)),
        config_(config), dst_picker_(std::move(dst_picker)),
        size_picker_(std::move(size_picker)), rng_(config.seed) {}

  /// Issues the initial window of requests at t = `start`.
  void start(SimTime start);

  /// End-to-end request(+response) completion times, microseconds.
  [[nodiscard]] const std::vector<double>& completion_times_us() const {
    return completions_us_;
  }
  [[nodiscard]] int requests_completed() const {
    return static_cast<int>(completions_us_.size());
  }

 private:
  void issue_request(HostId src, int remaining_rounds, SimTime when);
  void request_done(HostId src, const sim::FlowRecord& request,
                    int remaining_rounds);

  FlowStarter starter_;
  std::vector<HostId> hosts_;
  Config config_;
  DstPicker dst_picker_;
  SizePicker size_picker_;
  Rng rng_;
  std::vector<double> completions_us_;
};

/// Hadoop-sort model (section 5.2.2): `num_mappers` read input blocks from
/// random remote hosts, shuffle m x r equal flows, and `num_reducers` write
/// replica blocks to random hosts. Stages run behind global barriers; each
/// worker keeps `concurrent_blocks` flows in flight. Per-worker completion
/// times are recorded per stage (the Fig 12 metric).
class HadoopJob {
 public:
  struct Config {
    int num_mappers = 32;
    int num_reducers = 32;
    std::uint64_t total_bytes = 4'000'000'000;  // scaled-down default
    std::uint64_t block_bytes = 128'000'000;
    int concurrent_blocks = 4;
    std::uint64_t seed = 1;
  };

  HadoopJob(FlowStarter starter, std::vector<HostId> cluster_hosts,
            Config config);

  /// Runs the whole job; stages chain via flow-completion callbacks, so the
  /// caller just runs the event loop afterwards.
  void start(SimTime start);

  [[nodiscard]] bool finished() const { return stage_ >= 3; }
  /// Stage currently issuing flows: 0/1/2, or 3 once finished. Stages are
  /// separated by global barriers.
  [[nodiscard]] int current_stage() const { return stage_; }
  /// Per-worker completion times (seconds), one vector per stage:
  /// 0 = read input, 1 = shuffle, 2 = write output.
  [[nodiscard]] const std::vector<double>& stage_worker_times_s(
      int stage) const {
    return stage_times_s_[static_cast<std::size_t>(stage)];
  }

 private:
  struct Task {
    HostId peer;          // remote end (mapper reads FROM peer, etc.)
    std::uint64_t bytes;
    bool outbound;        // true: worker sends; false: worker fetches
  };
  struct Worker {
    HostId host;
    std::vector<Task> tasks;
    std::size_t next_task = 0;
    int in_flight = 0;
    SimTime stage_start = 0;
  };

  void start_stage(int stage);
  void pump_worker(Worker& worker);
  void task_done(Worker& worker);

  FlowStarter starter_;
  std::vector<HostId> cluster_;
  Config config_;
  Rng rng_;

  int stage_ = -1;
  int workers_remaining_ = 0;
  std::vector<Worker> workers_;
  std::vector<double> stage_times_s_[3];
  /// Latest observed completion time: the job's notion of "now", advanced
  /// by every flow callback. Stages and follow-up flows start at this time.
  SimTime stage_clock_ = 0;
};

}  // namespace pnet::workload
