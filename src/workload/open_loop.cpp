#include "workload/open_loop.hpp"

namespace pnet::workload {

OpenLoopApp::OpenLoopApp(sim::EventQueue& events, FlowStarter starter,
                         std::vector<HostId> hosts, double host_uplink_bps,
                         double mean_flow_bytes, Config config,
                         DstPicker dst_picker, SizePicker size_picker)
    : events_(events), starter_(std::move(starter)),
      hosts_(std::move(hosts)), config_(config),
      dst_picker_(std::move(dst_picker)),
      size_picker_(std::move(size_picker)), rng_(config.seed) {
  // load * aggregate edge bandwidth, in flows/second.
  const double aggregate_bps =
      host_uplink_bps * static_cast<double>(hosts_.size());
  flows_per_second_ =
      config.load * aggregate_bps / (mean_flow_bytes * 8.0);
}

void OpenLoopApp::start(SimTime start) {
  events_.schedule_at(start + next_gap(), this);
}

SimTime OpenLoopApp::next_gap() {
  // Inverse-transform exponential; clamp u away from 0 to avoid log(0).
  const double u = std::max(rng_.next_double(), 1e-12);
  const double seconds = -std::log(u) / flows_per_second_;
  return static_cast<SimTime>(seconds *
                              static_cast<double>(units::kSecond));
}

void OpenLoopApp::do_next_event() {
  if (flows_started_ >= config_.max_flows) return;
  ++flows_started_;
  last_arrival_ = events_.now();
  const HostId src =
      hosts_[rng_.next_below(hosts_.size())];
  const HostId dst = dst_picker_(src, rng_);
  const std::uint64_t bytes = size_picker_(rng_);
  starter_(src, dst, bytes, events_.now(),
           [this](const sim::FlowRecord& r) {
             completions_us_.push_back(
                 units::to_microseconds(r.end - r.start));
           });
  if (flows_started_ < config_.max_flows) {
    events_.schedule_in(next_gap(), this);
  }
}

}  // namespace pnet::workload
