#include "workload/partition_aggregate.hpp"

#include <cassert>

namespace pnet::workload {

void PartitionAggregateApp::start(SimTime start) {
  for (HostId aggregator : aggregators_) {
    issue_query(aggregator, config_.queries_per_aggregator, start);
  }
}

void PartitionAggregateApp::issue_query(HostId aggregator, int remaining,
                                        SimTime when) {
  if (remaining <= 0) return;
  assert(static_cast<int>(workers_.size()) >= config_.fan_out);

  queries_.push_back(std::make_unique<Query>());
  Query* query = queries_.back().get();
  query->aggregator = aggregator;
  query->started = when;
  query->outstanding = config_.fan_out;
  query->remaining_queries = remaining;

  // Pick fan_out distinct workers (excluding the aggregator itself).
  std::vector<HostId> pool;
  pool.reserve(workers_.size());
  for (HostId w : workers_) {
    if (w != aggregator) pool.push_back(w);
  }
  rng_.shuffle(pool);
  for (int i = 0; i < config_.fan_out; ++i) {
    const HostId worker = pool[static_cast<std::size_t>(i)];
    // Query leg: aggregator -> worker; response leg fires on completion.
    starter_(aggregator, worker, config_.query_bytes, when,
             [this, query, worker](const sim::FlowRecord& request) {
               starter_(worker, request.src, config_.response_bytes,
                        request.end,
                        [this, query](const sim::FlowRecord& response) {
                          response_done(query, response);
                        });
             });
  }
}

void PartitionAggregateApp::response_done(Query* query,
                                          const sim::FlowRecord& response) {
  query->last_response = std::max(query->last_response, response.end);
  if (--query->outstanding > 0) return;
  query_times_us_.push_back(
      units::to_microseconds(query->last_response - query->started));
  issue_query(query->aggregator, query->remaining_queries - 1,
              query->last_response);
}

}  // namespace pnet::workload
