// Synthetic traffic patterns used throughout section 5: permutation (each
// host talks to exactly one other host), all-to-all, and their rack-level
// variants.
#pragma once

#include <utility>
#include <vector>

#include "topo/parallel.hpp"
#include "util/rng.hpp"

namespace pnet::workload {

using HostPair = std::pair<HostId, HostId>;

/// Random permutation traffic: a derangement, so no host sends to itself.
std::vector<HostPair> permutation_pairs(int num_hosts, Rng& rng);

/// Host-level all-to-all: every ordered pair (src != dst).
std::vector<HostPair> all_to_all_pairs(int num_hosts);

/// One representative host per rack pair, for rack-level all-to-all
/// experiments (Fig 7). Returns (first host of rack a, first host of rack b)
/// for every ordered rack pair.
std::vector<HostPair> rack_all_to_all_pairs(const topo::ParallelNetwork& net);

/// A uniformly random destination different from `src`.
HostId random_destination(int num_hosts, HostId src, Rng& rng);

}  // namespace pnet::workload
