// Partition-aggregate workload: the user-facing soft-real-time pattern
// behind the paper's web-search trace [6] and its §6.5 incast discussion.
// An aggregator fans a small query out to `fan_out` workers; every worker
// answers with a response; the query completes when the LAST response
// lands (which is why the tail, not the mean, matters, and why the
// simultaneous responses incast the aggregator's downlink).
#pragma once

#include <functional>
#include <vector>

#include "workload/apps.hpp"

namespace pnet::workload {

class PartitionAggregateApp {
 public:
  struct Config {
    int fan_out = 8;
    std::uint64_t query_bytes = 1500;      // request to each worker
    std::uint64_t response_bytes = 20'000; // each worker's answer
    /// Queries per aggregator, issued back-to-back (closed loop).
    int queries_per_aggregator = 10;
    std::uint64_t seed = 1;
  };

  PartitionAggregateApp(FlowStarter starter,
                        std::vector<HostId> aggregators,
                        std::vector<HostId> workers, Config config)
      : starter_(std::move(starter)), aggregators_(std::move(aggregators)),
        workers_(std::move(workers)), config_(config), rng_(config.seed) {}

  void start(SimTime start);

  /// End-to-end query completion times (all responses in), microseconds.
  [[nodiscard]] const std::vector<double>& query_times_us() const {
    return query_times_us_;
  }
  [[nodiscard]] int queries_completed() const {
    return static_cast<int>(query_times_us_.size());
  }

 private:
  struct Query {
    HostId aggregator;
    SimTime started = 0;
    int outstanding = 0;
    SimTime last_response = 0;
    int remaining_queries = 0;
  };

  void issue_query(HostId aggregator, int remaining, SimTime when);
  void response_done(Query* query, const sim::FlowRecord& response);

  FlowStarter starter_;
  std::vector<HostId> aggregators_;
  std::vector<HostId> workers_;
  Config config_;
  Rng rng_;
  std::vector<double> query_times_us_;
  std::vector<std::unique_ptr<Query>> queries_;
};

}  // namespace pnet::workload
