// Open-loop Poisson traffic: flows arrive at a configured offered load
// regardless of completions, the standard alternative to the closed loops
// of §5.3. Open loop exposes overload behaviour closed loops mask (a slow
// network makes a closed loop back off; an open loop keeps pouring).
#pragma once

#include <cmath>

#include "sim/event_queue.hpp"
#include "workload/apps.hpp"
#include "workload/traces.hpp"

namespace pnet::workload {

class OpenLoopApp : public sim::EventSource {
 public:
  struct Config {
    /// Offered load as a fraction of the hosts' aggregate uplink capacity
    /// (0.5 = half the network's edge bandwidth in expectation).
    double load = 0.5;
    /// Stop injecting after this many flows.
    int max_flows = 1000;
    std::uint64_t seed = 1;
  };

  /// `mean_flow_bytes` must match the size picker's mean so the Poisson
  /// rate actually delivers the configured load.
  OpenLoopApp(sim::EventQueue& events, FlowStarter starter,
              std::vector<HostId> hosts, double host_uplink_bps,
              double mean_flow_bytes, Config config, DstPicker dst_picker,
              SizePicker size_picker);

  /// Schedules the first arrival; subsequent arrivals self-schedule.
  void start(SimTime start);
  void do_next_event() override;

  [[nodiscard]] int flows_started() const { return flows_started_; }
  /// When the last flow was injected (the end of the offered-load window;
  /// completions may drain long after under overload).
  [[nodiscard]] SimTime last_arrival() const { return last_arrival_; }
  [[nodiscard]] const std::vector<double>& completion_times_us() const {
    return completions_us_;
  }
  [[nodiscard]] int flows_completed() const {
    return static_cast<int>(completions_us_.size());
  }

 private:
  /// Exponential inter-arrival with the configured aggregate rate.
  [[nodiscard]] SimTime next_gap();

  sim::EventQueue& events_;
  FlowStarter starter_;
  std::vector<HostId> hosts_;
  Config config_;
  DstPicker dst_picker_;
  SizePicker size_picker_;
  Rng rng_;
  double flows_per_second_;
  int flows_started_ = 0;
  SimTime last_arrival_ = 0;
  std::vector<double> completions_us_;
};

}  // namespace pnet::workload
