// Flow-size distributions of the published datacenter traces used in
// section 5.3 / Fig 13a:
//   * Websearch  — DCTCP, Alizadeh et al., SIGCOMM'10 [6]
//   * Datamining — VL2, Greenberg et al., SIGCOMM'09 [22]
//   * Webserver / Cache / Hadoop — Facebook, Roy et al., SIGCOMM'15 [35]
//
// SUBSTITUTION NOTE (see DESIGN.md): the paper's artifact ships CSV CDFs
// captured from the original papers' figures. We embed piecewise CDFs with
// the well-known anchor points of those distributions instead and
// interpolate log-linearly in flow size between anchors. The experiments
// only consume the sampled sizes, so matching the mice/elephant mix is what
// preserves behaviour.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace pnet::workload {

enum class Trace : std::uint8_t {
  kWebSearch,
  kDataMining,
  kWebServer,
  kCache,
  kHadoop,
};

inline constexpr Trace kAllTraces[] = {Trace::kWebSearch, Trace::kDataMining,
                                       Trace::kWebServer, Trace::kCache,
                                       Trace::kHadoop};

[[nodiscard]] std::string to_string(Trace trace);

class FlowSizeDistribution {
 public:
  /// `points` are (size_bytes, cumulative_probability), strictly increasing
  /// in both coordinates, last probability 1.0.
  explicit FlowSizeDistribution(
      std::vector<std::pair<double, double>> points);

  /// The published distribution for `trace`.
  static const FlowSizeDistribution& of(Trace trace);

  /// Loads a distribution from CSV lines of "size_bytes,cumulative_prob"
  /// (the paper artifact's captured-CDF format). Lines starting with '#'
  /// and blank lines are skipped. Throws std::invalid_argument on malformed
  /// input or a non-monotone CDF.
  static FlowSizeDistribution from_csv(std::istream& in);

  /// Inverse-transform sample, log-linear between anchors. `cap_bytes`
  /// truncates the heavy tail for scaled-down runs (0 = no cap).
  [[nodiscard]] std::uint64_t sample(Rng& rng,
                                     std::uint64_t cap_bytes = 0) const;

  /// CDF value at `bytes` (for printing Fig 13a).
  [[nodiscard]] double cdf(double bytes) const;

  [[nodiscard]] double mean_bytes() const;
  [[nodiscard]] const std::vector<std::pair<double, double>>& points() const {
    return points_;
  }

 private:
  std::vector<std::pair<double, double>> points_;
};

}  // namespace pnet::workload
