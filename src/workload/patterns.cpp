#include "workload/patterns.hpp"

namespace pnet::workload {

std::vector<HostPair> permutation_pairs(int num_hosts, Rng& rng) {
  const auto d = rng.derangement(num_hosts);
  std::vector<HostPair> pairs;
  pairs.reserve(static_cast<std::size_t>(num_hosts));
  for (int src = 0; src < num_hosts; ++src) {
    pairs.emplace_back(HostId{src}, HostId{d[static_cast<std::size_t>(src)]});
  }
  return pairs;
}

std::vector<HostPair> all_to_all_pairs(int num_hosts) {
  std::vector<HostPair> pairs;
  pairs.reserve(static_cast<std::size_t>(num_hosts) *
                static_cast<std::size_t>(num_hosts - 1));
  for (int src = 0; src < num_hosts; ++src) {
    for (int dst = 0; dst < num_hosts; ++dst) {
      if (src != dst) pairs.emplace_back(HostId{src}, HostId{dst});
    }
  }
  return pairs;
}

std::vector<HostPair> rack_all_to_all_pairs(
    const topo::ParallelNetwork& net) {
  const int racks = net.num_racks();
  const int per_rack = net.hosts_per_rack();
  std::vector<HostPair> pairs;
  pairs.reserve(static_cast<std::size_t>(racks) *
                static_cast<std::size_t>(racks - 1));
  for (int a = 0; a < racks; ++a) {
    for (int b = 0; b < racks; ++b) {
      if (a != b) {
        pairs.emplace_back(HostId{a * per_rack}, HostId{b * per_rack});
      }
    }
  }
  return pairs;
}

HostId random_destination(int num_hosts, HostId src, Rng& rng) {
  int dst = rng.next_int(0, num_hosts - 1);
  if (dst >= src.v) ++dst;  // skip src while staying uniform
  return HostId{dst};
}

}  // namespace pnet::workload
