#include "workload/apps.hpp"

#include <cassert>

#include "workload/patterns.hpp"

namespace pnet::workload {

// ---------------------------------------------------------- ClosedLoopApp

void ClosedLoopApp::start(SimTime start) {
  for (HostId host : hosts_) {
    for (int w = 0; w < config_.concurrent_per_host; ++w) {
      issue_request(host, config_.rounds_per_worker, start);
    }
  }
}

void ClosedLoopApp::issue_request(HostId src, int remaining_rounds,
                                  SimTime when) {
  if (remaining_rounds <= 0) return;
  const HostId dst = dst_picker_(src, rng_);
  const std::uint64_t bytes = size_picker_(rng_);
  starter_(src, dst, bytes, when,
           [this, src, remaining_rounds](const sim::FlowRecord& record) {
             request_done(src, record, remaining_rounds);
           });
}

void ClosedLoopApp::request_done(HostId src, const sim::FlowRecord& request,
                                 int remaining_rounds) {
  if (config_.response_bytes == 0) {
    completions_us_.push_back(
        units::to_microseconds(request.end - request.start));
    issue_request(src, remaining_rounds - 1, request.end);
    return;
  }
  // RPC: fire the response back; the round completes when it lands.
  starter_(request.dst, request.src, config_.response_bytes, request.end,
           [this, src, remaining_rounds,
            rpc_start = request.start](const sim::FlowRecord& response) {
             completions_us_.push_back(
                 units::to_microseconds(response.end - rpc_start));
             issue_request(src, remaining_rounds - 1, response.end);
           });
}

// -------------------------------------------------------------- HadoopJob

HadoopJob::HadoopJob(FlowStarter starter, std::vector<HostId> cluster_hosts,
                     Config config)
    : starter_(std::move(starter)), cluster_(std::move(cluster_hosts)),
      config_(config), rng_(config.seed) {
  assert(static_cast<int>(cluster_.size()) >=
         config_.num_mappers + config_.num_reducers);
}

void HadoopJob::start(SimTime start) {
  stage_ = -1;
  stage_clock_ = start;
  start_stage(0);
}

void HadoopJob::start_stage(int stage) {
  stage_ = stage;
  if (stage >= 3) return;
  workers_.clear();

  const auto num_hosts = static_cast<int>(cluster_.size());
  const std::uint64_t per_mapper =
      config_.total_bytes / static_cast<std::uint64_t>(config_.num_mappers);
  const std::uint64_t per_reducer =
      config_.total_bytes / static_cast<std::uint64_t>(config_.num_reducers);

  auto random_other = [&](HostId self) {
    return random_destination(num_hosts, self, rng_);
  };

  if (stage == 0) {
    // Read input: mappers fetch their share in blocks from random hosts.
    for (int m = 0; m < config_.num_mappers; ++m) {
      Worker worker;
      worker.host = cluster_[static_cast<std::size_t>(m)];
      std::uint64_t remaining = per_mapper;
      while (remaining > 0) {
        const std::uint64_t block = std::min(remaining, config_.block_bytes);
        worker.tasks.push_back(
            {random_other(worker.host), block, /*outbound=*/false});
        remaining -= block;
      }
      workers_.push_back(std::move(worker));
    }
  } else if (stage == 1) {
    // Shuffle: every mapper sends an equal bucket to every reducer.
    const std::uint64_t bucket =
        per_mapper / static_cast<std::uint64_t>(config_.num_reducers);
    for (int m = 0; m < config_.num_mappers; ++m) {
      Worker worker;
      worker.host = cluster_[static_cast<std::size_t>(m)];
      for (int r = 0; r < config_.num_reducers; ++r) {
        worker.tasks.push_back(
            {cluster_[static_cast<std::size_t>(config_.num_mappers + r)],
             bucket, /*outbound=*/true});
      }
      workers_.push_back(std::move(worker));
    }
  } else {
    // Write output: reducers replicate their share to random hosts.
    for (int r = 0; r < config_.num_reducers; ++r) {
      Worker worker;
      worker.host =
          cluster_[static_cast<std::size_t>(config_.num_mappers + r)];
      std::uint64_t remaining = per_reducer;
      while (remaining > 0) {
        const std::uint64_t block = std::min(remaining, config_.block_bytes);
        worker.tasks.push_back(
            {random_other(worker.host), block, /*outbound=*/true});
        remaining -= block;
      }
      workers_.push_back(std::move(worker));
    }
  }

  workers_remaining_ = static_cast<int>(workers_.size());
  for (auto& worker : workers_) {
    worker.stage_start = stage_clock_;
    pump_worker(worker);
  }
}

void HadoopJob::pump_worker(Worker& worker) {
  while (worker.in_flight < config_.concurrent_blocks &&
         worker.next_task < worker.tasks.size()) {
    const Task& task = worker.tasks[worker.next_task++];
    const HostId src = task.outbound ? worker.host : task.peer;
    const HostId dst = task.outbound ? task.peer : worker.host;
    ++worker.in_flight;
    starter_(src, dst, task.bytes, stage_clock_,
             [this, &worker](const sim::FlowRecord& record) {
               stage_clock_ = record.end;
               task_done(worker);
             });
  }
}

void HadoopJob::task_done(Worker& worker) {
  --worker.in_flight;
  if (worker.next_task < worker.tasks.size()) {
    pump_worker(worker);
    return;
  }
  if (worker.in_flight > 0) return;

  // Worker finished its stage.
  stage_times_s_[static_cast<std::size_t>(stage_)].push_back(
      units::to_seconds(stage_clock_ - worker.stage_start));
  if (--workers_remaining_ == 0) start_stage(stage_ + 1);
}

}  // namespace pnet::workload
