#include "workload/traces.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace pnet::workload {

std::string to_string(Trace trace) {
  switch (trace) {
    case Trace::kWebSearch: return "websearch";
    case Trace::kDataMining: return "datamining";
    case Trace::kWebServer: return "webserver";
    case Trace::kCache: return "cache";
    case Trace::kHadoop: return "hadoop";
  }
  return "?";
}

FlowSizeDistribution::FlowSizeDistribution(
    std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  if (points_.size() < 2) {
    throw std::invalid_argument("distribution needs >= 2 anchor points");
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].first <= points_[i - 1].first ||
        points_[i].second <= points_[i - 1].second) {
      throw std::invalid_argument("CDF anchors must be strictly increasing");
    }
  }
  if (points_.back().second != 1.0) {
    throw std::invalid_argument("CDF must end at probability 1");
  }
}

const FlowSizeDistribution& FlowSizeDistribution::of(Trace trace) {
  // Anchor points (bytes, cumulative probability). See the header's
  // substitution note; anchors follow the figures of [6], [22], [35].
  static const FlowSizeDistribution websearch({
      {5'000, 0.10},   {10'000, 0.15},   {20'000, 0.28},
      {30'000, 0.40},  {50'000, 0.52},   {80'000, 0.58},
      {130'000, 0.62}, {300'000, 0.66},  {670'000, 0.70},
      {1.3e6, 0.78},   {3.0e6, 0.87},    {6.7e6, 0.92},
      {15e6, 0.96},    {30e6, 1.0},
  });
  static const FlowSizeDistribution datamining({
      {80, 0.02},      {200, 0.10},      {300, 0.28},
      {500, 0.40},     {1'000, 0.50},    {2'000, 0.60},
      {10'000, 0.69},  {50'000, 0.74},   {200'000, 0.78},
      {1e6, 0.82},     {5e6, 0.88},      {20e6, 0.92},
      {100e6, 0.96},   {1e9, 1.0},
  });
  static const FlowSizeDistribution webserver({
      {100, 0.08},     {300, 0.25},      {1'000, 0.55},
      {3'000, 0.72},   {10'000, 0.88},   {30'000, 0.95},
      {100'000, 0.98}, {1e6, 0.999},     {5e6, 1.0},
  });
  static const FlowSizeDistribution cache({
      {300, 0.05},     {1'000, 0.12},    {3'000, 0.28},
      {10'000, 0.55},  {30'000, 0.72},   {100'000, 0.85},
      {500'000, 0.93}, {1e6, 0.96},      {5e6, 0.99},
      {10e6, 1.0},
  });
  static const FlowSizeDistribution hadoop({
      {150, 0.08},     {500, 0.25},      {1'000, 0.40},
      {5'000, 0.58},   {20'000, 0.75},   {100'000, 0.90},
      {500'000, 0.94}, {2e6, 0.97},      {10e6, 0.99},
      {100e6, 1.0},
  });
  switch (trace) {
    case Trace::kWebSearch: return websearch;
    case Trace::kDataMining: return datamining;
    case Trace::kWebServer: return webserver;
    case Trace::kCache: return cache;
    case Trace::kHadoop: return hadoop;
  }
  throw std::invalid_argument("unknown trace");
}

FlowSizeDistribution FlowSizeDistribution::from_csv(std::istream& in) {
  std::vector<std::pair<double, double>> points;
  std::string line;
  while (std::getline(in, line)) {
    // Trim leading whitespace; skip comments and blanks.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    const auto comma = line.find(',', first);
    if (comma == std::string::npos) {
      throw std::invalid_argument("CSV line missing comma: " + line);
    }
    try {
      points.emplace_back(std::stod(line.substr(first, comma - first)),
                          std::stod(line.substr(comma + 1)));
    } catch (const std::exception&) {
      throw std::invalid_argument("malformed CSV line: " + line);
    }
  }
  return FlowSizeDistribution(std::move(points));
}

std::uint64_t FlowSizeDistribution::sample(Rng& rng,
                                           std::uint64_t cap_bytes) const {
  const double u = rng.next_double();
  double bytes;
  if (u <= points_.front().second) {
    bytes = points_.front().first;
  } else {
    auto it = std::lower_bound(
        points_.begin(), points_.end(), u,
        [](const auto& pt, double p) { return pt.second < p; });
    assert(it != points_.end() && it != points_.begin());
    const auto& [x1, p1] = *std::prev(it);
    const auto& [x2, p2] = *it;
    // Log-linear interpolation in size.
    const double t = (u - p1) / (p2 - p1);
    bytes = std::exp(std::log(x1) + t * (std::log(x2) - std::log(x1)));
  }
  auto result = static_cast<std::uint64_t>(std::max(bytes, 1.0));
  if (cap_bytes > 0) result = std::min(result, cap_bytes);
  return result;
}

double FlowSizeDistribution::cdf(double bytes) const {
  if (bytes <= points_.front().first) {
    return bytes < points_.front().first ? 0.0 : points_.front().second;
  }
  if (bytes >= points_.back().first) return 1.0;
  auto it = std::lower_bound(
      points_.begin(), points_.end(), bytes,
      [](const auto& pt, double b) { return pt.first < b; });
  const auto& [x2, p2] = *it;
  const auto& [x1, p1] = *std::prev(it);
  const double t = (std::log(bytes) - std::log(x1)) /
                   (std::log(x2) - std::log(x1));
  return p1 + t * (p2 - p1);
}

double FlowSizeDistribution::mean_bytes() const {
  // Expected value of the log-linear piecewise distribution, computed by
  // numerically integrating each segment (64 steps each is plenty for the
  // smooth segments we use).
  double mean = points_.front().first * points_.front().second;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const auto& [x1, p1] = points_[i - 1];
    const auto& [x2, p2] = points_[i];
    constexpr int kSteps = 64;
    for (int s = 0; s < kSteps; ++s) {
      const double t = (static_cast<double>(s) + 0.5) / kSteps;
      const double x =
          std::exp(std::log(x1) + t * (std::log(x2) - std::log(x1)));
      mean += x * (p2 - p1) / kSteps;
    }
  }
  return mean;
}

}  // namespace pnet::workload
