// Directed multigraph with typed nodes (hosts/switches) and capacitated,
// latency-annotated links. One Graph models one dataplane; a P-Net is a
// collection of Graphs (see parallel.hpp), which structurally enforces the
// paper's invariant that packets cannot cross dataplanes in flight.
//
// Full-duplex cables are modelled as a pair of directed links; the pair is
// linked via `reverse()` so ACK paths and duplex bookkeeping are O(1).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "util/ids.hpp"
#include "util/units.hpp"

namespace pnet::topo {

enum class NodeKind : std::uint8_t { kHost, kSwitch };

struct Node {
  NodeKind kind = NodeKind::kSwitch;
  /// For hosts: the global host index shared across planes. Invalid for
  /// switches.
  HostId host;
};

struct Link {
  NodeId src;
  NodeId dst;
  double rate_bps = 0.0;
  SimTime latency = 0;
};

class Graph {
 public:
  NodeId add_node(NodeKind kind, HostId host = HostId{}) {
    nodes_.push_back(Node{kind, host});
    adjacency_.emplace_back();
    return NodeId{static_cast<std::int32_t>(nodes_.size() - 1)};
  }

  /// Adds one directed link. Prefer add_duplex_link for physical cables.
  LinkId add_link(NodeId src, NodeId dst, double rate_bps, SimTime latency) {
    assert(src.valid() && dst.valid());
    links_.push_back(Link{src, dst, rate_bps, latency});
    const LinkId id{static_cast<std::int32_t>(links_.size() - 1)};
    adjacency_[static_cast<std::size_t>(src.v)].push_back(id);
    return id;
  }

  /// Adds a full-duplex cable: two directed links that are each other's
  /// reverse. Returns the forward link; the reverse is `reverse(returned)`.
  LinkId add_duplex_link(NodeId a, NodeId b, double rate_bps,
                         SimTime latency) {
    const LinkId fwd = add_link(a, b, rate_bps, latency);
    const LinkId rev = add_link(b, a, rate_bps, latency);
    assert(rev.v == fwd.v + 1);
    (void)rev;
    return fwd;
  }

  /// The opposite direction of a link created by add_duplex_link. Links are
  /// created in (fwd, rev) pairs, so the partner differs in the lowest bit.
  [[nodiscard]] LinkId reverse(LinkId id) const {
    assert(id.valid());
    return LinkId{id.v ^ 1};
  }

  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] int num_links() const {
    return static_cast<int>(links_.size());
  }
  /// Physical cables (duplex pairs).
  [[nodiscard]] int num_cables() const { return num_links() / 2; }

  [[nodiscard]] const Node& node(NodeId id) const {
    return nodes_[static_cast<std::size_t>(id.v)];
  }
  [[nodiscard]] const Link& link(LinkId id) const {
    return links_[static_cast<std::size_t>(id.v)];
  }
  [[nodiscard]] std::span<const LinkId> out_links(NodeId id) const {
    return adjacency_[static_cast<std::size_t>(id.v)];
  }

  [[nodiscard]] bool is_host(NodeId id) const {
    return node(id).kind == NodeKind::kHost;
  }

  [[nodiscard]] std::vector<NodeId> hosts() const {
    std::vector<NodeId> out;
    for (int i = 0; i < num_nodes(); ++i) {
      const NodeId id{i};
      if (is_host(id)) out.push_back(id);
    }
    return out;
  }

  [[nodiscard]] std::vector<NodeId> switches() const {
    std::vector<NodeId> out;
    for (int i = 0; i < num_nodes(); ++i) {
      const NodeId id{i};
      if (!is_host(id)) out.push_back(id);
    }
    return out;
  }

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;
};

}  // namespace pnet::topo
