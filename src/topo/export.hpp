// Topology export for visualization and debugging: Graphviz DOT for a
// single plane, and a multi-plane variant that colors each dataplane
// (hosts shared, one subgraph of switches/links per plane) — the picture
// in the paper's Figs 4 and 5.
#pragma once

#include <string>

#include "topo/parallel.hpp"

namespace pnet::topo {

/// DOT for one graph. Hosts are boxes, switches are circles; each duplex
/// pair is emitted once as an undirected edge.
std::string to_dot(const Graph& graph, const std::string& name = "plane");

/// DOT for a whole P-Net: shared host nodes, one colored edge set per
/// dataplane.
std::string to_dot(const ParallelNetwork& net,
                   const std::string& name = "pnet");

}  // namespace pnet::topo
