#include "topo/export.hpp"

#include <sstream>

namespace pnet::topo {

namespace {

const char* kPlaneColors[] = {"red",    "blue",  "green",  "orange",
                              "purple", "brown", "magenta", "cyan"};

void emit_nodes(std::ostringstream& out, const Graph& graph,
                const std::string& prefix) {
  for (int i = 0; i < graph.num_nodes(); ++i) {
    const NodeId id{i};
    if (graph.is_host(id)) {
      out << "  " << prefix << i << " [shape=box,label=\"h"
          << graph.node(id).host.v << "\"];\n";
    } else {
      out << "  " << prefix << i << " [shape=circle,label=\"s" << i
          << "\"];\n";
    }
  }
}

void emit_edges(std::ostringstream& out, const Graph& graph,
                const std::string& prefix, const char* color) {
  for (int l = 0; l < graph.num_links(); l += 2) {
    const auto& link = graph.link(LinkId{l});
    out << "  " << prefix << link.src.v << " -- " << prefix << link.dst.v
        << " [color=" << color << "];\n";
  }
}

}  // namespace

std::string to_dot(const Graph& graph, const std::string& name) {
  std::ostringstream out;
  out << "graph " << name << " {\n";
  emit_nodes(out, graph, "n");
  emit_edges(out, graph, "n", "black");
  out << "}\n";
  return out.str();
}

std::string to_dot(const ParallelNetwork& net, const std::string& name) {
  std::ostringstream out;
  out << "graph " << name << " {\n";
  // Shared hosts once.
  for (int h = 0; h < net.num_hosts(); ++h) {
    out << "  h" << h << " [shape=box,label=\"h" << h << "\"];\n";
  }
  for (int p = 0; p < net.num_planes(); ++p) {
    const Graph& g = net.plane(p).graph;
    const char* color = kPlaneColors[static_cast<std::size_t>(p) %
                                     std::size(kPlaneColors)];
    const std::string prefix = "p" + std::to_string(p) + "_";
    out << "  subgraph cluster_plane" << p << " {\n    label=\"plane " << p
        << "\";\n";
    for (int i = 0; i < g.num_nodes(); ++i) {
      const NodeId id{i};
      if (!g.is_host(id)) {
        out << "    " << prefix << i << " [shape=circle,color=" << color
            << ",label=\"s" << i << "\"];\n";
      }
    }
    out << "  }\n";
    for (int l = 0; l < g.num_links(); l += 2) {
      const auto& link = g.link(LinkId{l});
      auto endpoint = [&](NodeId node) {
        return g.is_host(node)
                   ? "h" + std::to_string(g.node(node).host.v)
                   : prefix + std::to_string(node.v);
      };
      out << "  " << endpoint(link.src) << " -- " << endpoint(link.dst)
          << " [color=" << color << "];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace pnet::topo
