// Generalized t-tier folded-Clos ("scale-out") and chassis-based fat trees
// — the two serial architectures of Table 1 / Figure 2, built at switch-CHIP
// granularity so hop counts and component counts can be verified
// structurally against the analytic cost model (core/cost_model.hpp).
//
// Terminology: a t-tier folded Clos of radix-k chips supports 2*(k/2)^t
// hosts using (2t-1)*(k/2)^(t-1) chips, and a host-to-host path crosses
// 2t-1 chips. The chassis variant packages chips into 128-port boxes (a
// 2-stage blocking aggregation chassis and a 3-stage non-blocking spine
// chassis) and wires a 2-tier fat tree of boxes; packets cross 7 chips.
#pragma once

#include <vector>

#include "topo/graph.hpp"

namespace pnet::topo {

struct MultiTierConfig {
  int radix = 8;   // chip radix, even
  int tiers = 3;   // >= 1
  double link_rate_bps = 100e9;
  SimTime host_link_latency = units::kMicrosecond / 2;
  SimTime fabric_link_latency = units::kMicrosecond;
  /// Intra-chassis backplane traces are short copper; used by the chassis
  /// builder only.
  SimTime backplane_latency = 50 * units::kNanosecond;
};

struct MultiTierFatTree {
  Graph graph;
  std::vector<NodeId> host_nodes;
  /// switches[t] = all chips at tier t (0 = edge).
  std::vector<std::vector<NodeId>> tier_switches;

  [[nodiscard]] int num_hosts() const {
    return static_cast<int>(host_nodes.size());
  }
  [[nodiscard]] int num_chips() const {
    int total = 0;
    for (const auto& tier : tier_switches) {
      total += static_cast<int>(tier.size());
    }
    return total;
  }
};

/// Builds the full t-tier folded Clos recursively: a tier-t fabric is k/2
/// tier-(t-1) pods interconnected by (k/2)^(t-1) top switches.
MultiTierFatTree build_multi_tier_fat_tree(const MultiTierConfig& config);

struct ChassisFatTree {
  Graph graph;
  std::vector<NodeId> host_nodes;
  /// Chips, grouped per aggregation chassis and per spine chassis.
  std::vector<std::vector<NodeId>> agg_chassis;
  std::vector<std::vector<NodeId>> spine_chassis;

  [[nodiscard]] int num_hosts() const {
    return static_cast<int>(host_nodes.size());
  }
  [[nodiscard]] int num_chips() const;
  [[nodiscard]] int num_boxes() const {
    return static_cast<int>(agg_chassis.size() + spine_chassis.size());
  }
};

/// Builds a chassis fat tree for `hosts` end hosts out of radix-`radix`
/// chips packaged into chassis of `chassis_ports` external ports
/// (aggregation: 2-stage blocking; spine: 3-stage non-blocking Clos).
ChassisFatTree build_chassis_fat_tree(int hosts, int radix,
                                      int chassis_ports,
                                      const MultiTierConfig& config = {});

/// Number of switch chips a shortest host-to-host path crosses between the
/// two given hosts (BFS over chips; hosts do not forward).
int chip_hops(const Graph& graph, NodeId src_host, NodeId dst_host);

}  // namespace pnet::topo
