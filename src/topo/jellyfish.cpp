#include "topo/jellyfish.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace pnet::topo {

namespace {

using Edge = std::pair<int, int>;  // switch indices, ordered lo < hi

Edge make_edge(int a, int b) { return a < b ? Edge{a, b} : Edge{b, a}; }

/// Random r-regular graph on n vertices, returned as an edge set.
std::set<Edge> random_regular_graph(int n, int r, Rng& rng) {
  if (n * r % 2 != 0) {
    throw std::invalid_argument("jellyfish: n * r must be even");
  }
  if (r >= n) {
    throw std::invalid_argument("jellyfish: degree must be < num switches");
  }

  std::set<Edge> edges;
  std::vector<int> free_ports(static_cast<std::size_t>(n), r);

  auto switches_with_free_ports = [&] {
    std::vector<int> out;
    for (int i = 0; i < n; ++i) {
      if (free_ports[static_cast<std::size_t>(i)] > 0) out.push_back(i);
    }
    return out;
  };

  while (true) {
    // Connect random non-adjacent pairs until no progress is possible.
    auto candidates = switches_with_free_ports();
    bool progress = true;
    while (progress && candidates.size() >= 2) {
      progress = false;
      // Try a bounded number of random picks before scanning exhaustively.
      for (int attempt = 0; attempt < 64; ++attempt) {
        const int i =
            candidates[rng.next_below(candidates.size())];
        const int j =
            candidates[rng.next_below(candidates.size())];
        if (i == j || edges.contains(make_edge(i, j))) continue;
        edges.insert(make_edge(i, j));
        --free_ports[static_cast<std::size_t>(i)];
        --free_ports[static_cast<std::size_t>(j)];
        progress = true;
        break;
      }
      if (!progress) {
        // Exhaustive check: is there *any* connectable pair left?
        for (std::size_t a = 0; a < candidates.size() && !progress; ++a) {
          for (std::size_t b = a + 1; b < candidates.size(); ++b) {
            const Edge e = make_edge(candidates[a], candidates[b]);
            if (!edges.contains(e)) {
              edges.insert(e);
              --free_ports[static_cast<std::size_t>(candidates[a])];
              --free_ports[static_cast<std::size_t>(candidates[b])];
              progress = true;
              break;
            }
          }
        }
      }
      if (progress) candidates = switches_with_free_ports();
    }

    candidates = switches_with_free_ports();
    if (candidates.empty()) return edges;

    // Stuck: some switch p retains free ports but all its non-neighbors are
    // full. Splice p into a random existing edge (x, y) with x, y != p and
    // neither adjacent to p (Jellyfish section 3 construction).
    bool spliced = false;
    for (int p : candidates) {
      if (free_ports[static_cast<std::size_t>(p)] < 2) continue;
      std::vector<Edge> pool(edges.begin(), edges.end());
      rng.shuffle(pool);
      for (const Edge& e : pool) {
        const auto [x, y] = e;
        if (x == p || y == p) continue;
        if (edges.contains(make_edge(p, x)) ||
            edges.contains(make_edge(p, y))) {
          continue;
        }
        edges.erase(e);
        edges.insert(make_edge(p, x));
        edges.insert(make_edge(p, y));
        free_ports[static_cast<std::size_t>(p)] -= 2;
        spliced = true;
        break;
      }
      if (spliced) break;
    }
    if (!spliced) {
      // A single dangling port (odd leftover) cannot be wired; admissible
      // per the Jellyfish paper, which leaves such ports unused.
      return edges;
    }
  }
}

}  // namespace

namespace {

/// Materializes a Jellyfish from an explicit switch-edge set.
Jellyfish assemble(const std::set<Edge>& edge_set, int num_switches,
                   const JellyfishConfig& config) {
  Jellyfish jf;
  jf.network_degree = config.network_degree;
  Graph& g = jf.graph;

  jf.switch_nodes.reserve(static_cast<std::size_t>(num_switches));
  for (int i = 0; i < num_switches; ++i) {
    jf.switch_nodes.push_back(g.add_node(NodeKind::kSwitch));
  }
  for (const auto& [a, b] : edge_set) {
    g.add_duplex_link(jf.switch_nodes[static_cast<std::size_t>(a)],
                      jf.switch_nodes[static_cast<std::size_t>(b)],
                      config.link_rate_bps, config.fabric_link_latency);
  }
  jf.host_nodes.reserve(
      static_cast<std::size_t>(num_switches * config.hosts_per_switch));
  for (int s = 0; s < num_switches; ++s) {
    for (int h = 0; h < config.hosts_per_switch; ++h) {
      const int local = static_cast<int>(jf.host_nodes.size());
      const NodeId host = g.add_node(
          NodeKind::kHost, HostId{config.first_host_index + local});
      jf.host_nodes.push_back(host);
      g.add_duplex_link(host, jf.switch_nodes[static_cast<std::size_t>(s)],
                        config.link_rate_bps, config.host_link_latency);
    }
  }
  return jf;
}

/// Recovers the switch-edge set of an existing Jellyfish.
std::set<Edge> edge_set_of(const Jellyfish& jf) {
  std::vector<int> switch_index(
      static_cast<std::size_t>(jf.graph.num_nodes()), -1);
  for (std::size_t i = 0; i < jf.switch_nodes.size(); ++i) {
    switch_index[static_cast<std::size_t>(jf.switch_nodes[i].v)] =
        static_cast<int>(i);
  }
  std::set<Edge> edges;
  for (int l = 0; l < jf.graph.num_links(); l += 2) {
    const auto& link = jf.graph.link(LinkId{l});
    const int a = switch_index[static_cast<std::size_t>(link.src.v)];
    const int b = switch_index[static_cast<std::size_t>(link.dst.v)];
    if (a >= 0 && b >= 0) edges.insert(make_edge(a, b));
  }
  return edges;
}

}  // namespace

Jellyfish expand_jellyfish(const Jellyfish& base,
                           const JellyfishConfig& config,
                           int additional_switches, std::uint64_t seed) {
  Rng rng(seed);
  std::set<Edge> edges = edge_set_of(base);
  int n = static_cast<int>(base.switch_nodes.size());
  const int r = config.network_degree;

  for (int added = 0; added < additional_switches; ++added) {
    const int p = n++;
    int wired = 0;
    // Splice into r/2 random existing links not already adjacent to p.
    for (int attempt = 0; attempt < 1000 && wired + 2 <= r; ++attempt) {
      std::vector<Edge> pool(edges.begin(), edges.end());
      const Edge e = pool[rng.next_below(pool.size())];
      const auto [u, v] = e;
      if (u == p || v == p || edges.contains(make_edge(p, u)) ||
          edges.contains(make_edge(p, v))) {
        continue;
      }
      edges.erase(e);
      edges.insert(make_edge(p, u));
      edges.insert(make_edge(p, v));
      wired += 2;
    }
  }
  return assemble(edges, n, config);
}

Jellyfish build_jellyfish(const JellyfishConfig& config) {
  Rng rng(config.seed);
  const int n = config.num_switches;

  const std::set<Edge> edge_set =
      random_regular_graph(n, config.network_degree, rng);
  return assemble(edge_set, n, config);
}

}  // namespace pnet::topo
