// Parallel Dataplane Networks (P-Nets): the paper's core topology object.
//
// A ParallelNetwork is N disjoint dataplanes. Every host exists in every
// plane (one NIC channel per plane); switches and links belong to exactly
// one plane. Packets cannot cross planes because the planes are separate
// Graph objects — the invariant is structural, not a runtime check.
//
// The four network types compared throughout section 5 map to:
//   serial low-bandwidth   -> 1 plane,  base rate
//   parallel homogeneous   -> N planes, base rate, identical instantiation
//   parallel heterogeneous -> N planes, base rate, per-plane random seeds
//   serial high-bandwidth  -> 1 plane,  N * base rate
// `parallelism()` returns N for all four so benches can normalize fairly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/fat_tree.hpp"
#include "topo/graph.hpp"
#include "topo/jellyfish.hpp"
#include "topo/xpander.hpp"

namespace pnet::topo {

enum class TopoKind : std::uint8_t { kFatTree, kJellyfish, kXpander };

enum class NetworkType : std::uint8_t {
  kSerialLow,
  kParallelHomogeneous,
  kParallelHeterogeneous,
  kSerialHigh,
};

[[nodiscard]] std::string to_string(NetworkType type);
[[nodiscard]] std::string to_string(TopoKind kind);

struct Plane {
  Graph graph;
  std::vector<NodeId> host_nodes;    // indexed by global host index
  std::vector<NodeId> switch_nodes;  // ToRs (and fabric switches)
  double link_rate_bps = 0.0;
};

struct NetworkSpec {
  TopoKind topo = TopoKind::kFatTree;
  NetworkType type = NetworkType::kSerialLow;
  /// Degree of parallelism N. For the serial types this still scopes the
  /// comparison: serial-high runs its single plane at N * base rate.
  int parallelism = 4;
  /// Target host count; fat trees round up to the next k^3/4.
  int hosts = 128;
  double base_rate_bps = 100e9;
  SimTime host_latency = units::kMicrosecond / 2;
  SimTime fabric_latency = units::kMicrosecond;
  std::uint64_t seed = 1;
  /// Jellyfish shape; 0 means "derive from hosts" (hosts_per_switch ~= r/2
  /// oversubscription-free split used in the Jellyfish paper).
  int jf_switches = 0;
  int jf_degree = 0;
  int jf_hosts_per_switch = 0;
};

class ParallelNetwork {
 public:
  ParallelNetwork(NetworkSpec spec, std::vector<Plane> planes,
                  int hosts_per_rack)
      : spec_(spec), planes_(std::move(planes)),
        hosts_per_rack_(hosts_per_rack) {}

  [[nodiscard]] const NetworkSpec& spec() const { return spec_; }
  [[nodiscard]] int num_planes() const {
    return static_cast<int>(planes_.size());
  }
  /// N: the factor the experiment scales by (see file comment).
  [[nodiscard]] int parallelism() const { return spec_.parallelism; }
  [[nodiscard]] int num_hosts() const {
    return static_cast<int>(planes_.front().host_nodes.size());
  }
  [[nodiscard]] const Plane& plane(int index) const {
    return planes_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] NodeId host_node(int plane, HostId host) const {
    return planes_[static_cast<std::size_t>(plane)]
        .host_nodes[static_cast<std::size_t>(host.v)];
  }
  [[nodiscard]] int hosts_per_rack() const { return hosts_per_rack_; }
  [[nodiscard]] int num_racks() const {
    return num_hosts() / hosts_per_rack_;
  }
  [[nodiscard]] int rack_of_host(HostId host) const {
    return host.v / hosts_per_rack_;
  }
  /// Total host uplink capacity (all planes), bits/second.
  [[nodiscard]] double host_uplink_bps() const {
    double total = 0.0;
    for (const auto& p : planes_) total += p.link_rate_bps;
    return total;
  }

 private:
  NetworkSpec spec_;
  std::vector<Plane> planes_;
  int hosts_per_rack_;
};

/// Builds one of the four section-5 network types.
ParallelNetwork build_network(const NetworkSpec& spec);

}  // namespace pnet::topo
