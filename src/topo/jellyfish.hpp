// Jellyfish random-regular-graph topology builder (Singla et al., NSDI'12).
//
// Switches form a random r-regular graph; each switch additionally serves
// `hosts_per_switch` machines. Different seeds give different instantiations,
// which is exactly what a heterogeneous P-Net exploits: each dataplane is an
// independent draw, so for any rack pair the minimum path length over the N
// planes is stochastically shorter than in any single plane (section 3.2).
#pragma once

#include <cstdint>
#include <vector>

#include "topo/graph.hpp"

namespace pnet::topo {

struct JellyfishConfig {
  int num_switches = 98;
  int network_degree = 7;   // r: ports used for switch-to-switch links
  int hosts_per_switch = 7; // k - r ports face hosts
  double link_rate_bps = 100e9;
  SimTime host_link_latency = units::kMicrosecond / 2;
  SimTime fabric_link_latency = units::kMicrosecond;
  std::uint64_t seed = 1;
  int first_host_index = 0;
};

struct Jellyfish {
  Graph graph;
  std::vector<NodeId> host_nodes;      // indexed by local host index
  std::vector<NodeId> switch_nodes;    // the racks/ToRs
  int network_degree = 0;

  [[nodiscard]] int num_hosts() const {
    return static_cast<int>(host_nodes.size());
  }
  [[nodiscard]] int rack_of_host(int host_index) const {
    return host_index /
           (num_hosts() / static_cast<int>(switch_nodes.size()));
  }
};

/// Builds the random regular graph with the paper's construction: connect
/// uniformly random pairs of non-adjacent switches with free ports; when the
/// process gets stuck with one switch holding >= 2 free ports, break a random
/// existing link and splice the stuck switch in.
Jellyfish build_jellyfish(const JellyfishConfig& config);

/// Incremental expansion (Jellyfish §4, cited by the paper's §6.1 as what
/// lets operators "more easily scale up" expander planes): each new switch
/// is spliced in by removing degree/2 random existing fabric links (u, v)
/// and wiring (new, u) and (new, v) instead. Existing switch degrees are
/// preserved; the result is a fresh Jellyfish whose first
/// `base.num_hosts()` hosts keep their indices.
Jellyfish expand_jellyfish(const Jellyfish& base,
                           const JellyfishConfig& config,
                           int additional_switches, std::uint64_t seed);

}  // namespace pnet::topo
