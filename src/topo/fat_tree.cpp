#include "topo/fat_tree.hpp"

#include <cassert>
#include <stdexcept>

namespace pnet::topo {

FatTree build_fat_tree(const FatTreeConfig& config) {
  const int k = config.k;
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("fat tree radix k must be even and >= 2");
  }
  const int half = k / 2;
  const int num_pods = k;
  const int hosts_per_edge = half;
  const int num_hosts = k * k * k / 4;
  const int num_core = half * half;

  FatTree ft;
  ft.k = k;
  Graph& g = ft.graph;

  // Core switches first so their ids are stable regardless of pod count.
  ft.core_switches.reserve(static_cast<std::size_t>(num_core));
  for (int c = 0; c < num_core; ++c) {
    ft.core_switches.push_back(g.add_node(NodeKind::kSwitch));
  }

  ft.host_nodes.reserve(static_cast<std::size_t>(num_hosts));
  for (int pod = 0; pod < num_pods; ++pod) {
    std::vector<NodeId> edges;
    std::vector<NodeId> aggs;
    for (int i = 0; i < half; ++i) {
      edges.push_back(g.add_node(NodeKind::kSwitch));
    }
    for (int i = 0; i < half; ++i) {
      aggs.push_back(g.add_node(NodeKind::kSwitch));
    }

    // Hosts under each edge switch.
    for (int e = 0; e < half; ++e) {
      for (int h = 0; h < hosts_per_edge; ++h) {
        const int local = static_cast<int>(ft.host_nodes.size());
        const NodeId host = g.add_node(
            NodeKind::kHost, HostId{config.first_host_index + local});
        ft.host_nodes.push_back(host);
        g.add_duplex_link(host, edges[static_cast<std::size_t>(e)],
                          config.link_rate_bps, config.host_link_latency);
      }
    }

    // Full bipartite edge <-> aggregation mesh within the pod.
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        g.add_duplex_link(edges[static_cast<std::size_t>(e)],
                          aggs[static_cast<std::size_t>(a)],
                          config.link_rate_bps, config.fabric_link_latency);
      }
    }

    // Aggregation switch a connects to core switches [a*half, (a+1)*half).
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        const int core_index = a * half + c;
        g.add_duplex_link(
            aggs[static_cast<std::size_t>(a)],
            ft.core_switches[static_cast<std::size_t>(core_index)],
            config.link_rate_bps, config.fabric_link_latency);
      }
    }

    ft.edge_switches.insert(ft.edge_switches.end(), edges.begin(),
                            edges.end());
    ft.agg_switches.insert(ft.agg_switches.end(), aggs.begin(), aggs.end());
  }

  assert(static_cast<int>(ft.host_nodes.size()) == num_hosts);
  return ft;
}

int fat_tree_k_for_hosts(int hosts) {
  int k = 2;
  while (k * k * k / 4 < hosts) k += 2;
  return k;
}

}  // namespace pnet::topo
