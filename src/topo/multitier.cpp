#include "topo/multitier.hpp"

#include <cassert>
#include <stdexcept>

#include "routing/shortest.hpp"

namespace pnet::topo {

namespace {

/// A pod of the recursive folded Clos: levels[0] = edge chips, levels back()
/// = the pod's top chips (each with radix/2 free up-ports).
struct Pod {
  std::vector<std::vector<NodeId>> levels;
};

int int_pow(int base, int exp) {
  int v = 1;
  for (int i = 0; i < exp; ++i) v *= base;
  return v;
}

/// Builds a tier-j pod and attaches hosts below its edge switches.
Pod build_pod(Graph& g, int j, const MultiTierConfig& config,
              std::vector<NodeId>& hosts) {
  const int half = config.radix / 2;
  if (j == 1) {
    Pod pod;
    const NodeId sw = g.add_node(NodeKind::kSwitch);
    pod.levels.push_back({sw});
    for (int h = 0; h < half; ++h) {
      const NodeId host = g.add_node(
          NodeKind::kHost, HostId{static_cast<std::int32_t>(hosts.size())});
      hosts.push_back(host);
      g.add_duplex_link(host, sw, config.link_rate_bps,
                        config.host_link_latency);
    }
    return pod;
  }

  // half sub-pods plus (half)^(j-1) level-j chips.
  std::vector<Pod> sub_pods;
  sub_pods.reserve(static_cast<std::size_t>(half));
  for (int p = 0; p < half; ++p) {
    sub_pods.push_back(build_pod(g, j - 1, config, hosts));
  }
  std::vector<NodeId> tops;
  const int top_count = int_pow(half, j - 1);
  tops.reserve(static_cast<std::size_t>(top_count));
  for (int s = 0; s < top_count; ++s) {
    tops.push_back(g.add_node(NodeKind::kSwitch));
  }

  // Sub-pod uplink u*half+q (top chip u, up-port q) goes to level-j chip
  // u*half+q; every sub-pod wires the same pattern.
  Pod pod;
  for (const auto& sub : sub_pods) {
    const auto& sub_tops = sub.levels.back();
    for (std::size_t u = 0; u < sub_tops.size(); ++u) {
      for (int q = 0; q < half; ++q) {
        const int parent = static_cast<int>(u) * half + q;
        g.add_duplex_link(sub_tops[u],
                          tops[static_cast<std::size_t>(parent)],
                          config.link_rate_bps, config.fabric_link_latency);
      }
    }
  }

  // Merge levels.
  pod.levels.resize(static_cast<std::size_t>(j));
  for (const auto& sub : sub_pods) {
    for (std::size_t lvl = 0; lvl < sub.levels.size(); ++lvl) {
      pod.levels[lvl].insert(pod.levels[lvl].end(), sub.levels[lvl].begin(),
                             sub.levels[lvl].end());
    }
  }
  pod.levels.back() = std::move(tops);
  return pod;
}

}  // namespace

MultiTierFatTree build_multi_tier_fat_tree(const MultiTierConfig& config) {
  if (config.radix < 2 || config.radix % 2 != 0) {
    throw std::invalid_argument("radix must be even and >= 2");
  }
  if (config.tiers < 1) throw std::invalid_argument("tiers must be >= 1");

  MultiTierFatTree ft;
  Graph& g = ft.graph;
  const int half = config.radix / 2;
  const int l = config.tiers;

  if (l == 1) {
    // Degenerate: one switch with all radix ports facing hosts.
    const NodeId sw = g.add_node(NodeKind::kSwitch);
    for (int h = 0; h < config.radix; ++h) {
      const NodeId host = g.add_node(
          NodeKind::kHost,
          HostId{static_cast<std::int32_t>(ft.host_nodes.size())});
      ft.host_nodes.push_back(host);
      g.add_duplex_link(host, sw, config.link_rate_bps,
                        config.host_link_latency);
    }
    ft.tier_switches.push_back({sw});
    return ft;
  }

  // radix pods of tier l-1 under (half)^(l-1) core chips (all ports down).
  std::vector<Pod> pods;
  pods.reserve(static_cast<std::size_t>(config.radix));
  for (int p = 0; p < config.radix; ++p) {
    pods.push_back(build_pod(g, l - 1, config, ft.host_nodes));
  }
  const int core_count = int_pow(half, l - 1);
  std::vector<NodeId> cores;
  cores.reserve(static_cast<std::size_t>(core_count));
  for (int c = 0; c < core_count; ++c) {
    cores.push_back(g.add_node(NodeKind::kSwitch));
  }
  for (const auto& pod : pods) {
    const auto& tops = pod.levels.back();
    for (std::size_t u = 0; u < tops.size(); ++u) {
      for (int q = 0; q < half; ++q) {
        const int core = static_cast<int>(u) * half + q;
        g.add_duplex_link(tops[u], cores[static_cast<std::size_t>(core)],
                          config.link_rate_bps, config.fabric_link_latency);
      }
    }
  }

  ft.tier_switches.resize(static_cast<std::size_t>(l));
  for (const auto& pod : pods) {
    for (std::size_t lvl = 0; lvl < pod.levels.size(); ++lvl) {
      ft.tier_switches[lvl].insert(ft.tier_switches[lvl].end(),
                                   pod.levels[lvl].begin(),
                                   pod.levels[lvl].end());
    }
  }
  ft.tier_switches.back() = std::move(cores);
  return ft;
}

int ChassisFatTree::num_chips() const {
  int total = 0;
  for (const auto& box : agg_chassis) total += static_cast<int>(box.size());
  for (const auto& box : spine_chassis) {
    total += static_cast<int>(box.size());
  }
  return total;
}

ChassisFatTree build_chassis_fat_tree(int hosts, int radix,
                                      int chassis_ports,
                                      const MultiTierConfig& config) {
  const int half = radix / 2;
  if (radix % 2 != 0 || chassis_ports % radix != 0) {
    throw std::invalid_argument("chassis: ports must be a multiple of the "
                                "even chip radix");
  }
  const std::int64_t supported =
      static_cast<std::int64_t>(chassis_ports) * chassis_ports / 2;
  if (supported < hosts) {
    throw std::invalid_argument("chassis design too small for host count");
  }
  if (hosts % (chassis_ports / 2) != 0) {
    throw std::invalid_argument("hosts must fill whole aggregation chassis");
  }

  ChassisFatTree ct;
  Graph& g = ct.graph;

  const int num_agg = hosts / (chassis_ports / 2);
  const int num_spine = num_agg / 2;
  if (num_spine > chassis_ports / 2) {
    throw std::invalid_argument("more spines than aggregation up-ports");
  }

  // --- aggregation chassis: leaf chips (host side) + fabric chips (spine
  // side), full bipartite internal mesh over the backplane.
  const int agg_leaves = (chassis_ports / 2) / half;  // e.g. 8 at 128/16
  struct AggBox {
    std::vector<NodeId> leaves;
    std::vector<NodeId> fabrics;
  };
  std::vector<AggBox> aggs(static_cast<std::size_t>(num_agg));
  for (auto& box : aggs) {
    std::vector<NodeId> chips;
    for (int i = 0; i < agg_leaves; ++i) {
      box.leaves.push_back(g.add_node(NodeKind::kSwitch));
    }
    for (int i = 0; i < agg_leaves; ++i) {
      box.fabrics.push_back(g.add_node(NodeKind::kSwitch));
    }
    for (NodeId leaf : box.leaves) {
      for (NodeId fabric : box.fabrics) {
        g.add_duplex_link(leaf, fabric, config.link_rate_bps,
                          config.backplane_latency);
      }
    }
    chips = box.leaves;
    chips.insert(chips.end(), box.fabrics.begin(), box.fabrics.end());
    ct.agg_chassis.push_back(std::move(chips));

    // Hosts under the leaf chips.
    for (NodeId leaf : box.leaves) {
      for (int h = 0; h < half; ++h) {
        const NodeId host = g.add_node(
            NodeKind::kHost,
            HostId{static_cast<std::int32_t>(ct.host_nodes.size())});
        ct.host_nodes.push_back(host);
        g.add_duplex_link(host, leaf, config.link_rate_bps,
                          config.host_link_latency);
      }
    }
  }

  // --- spine chassis: folded 3-stage Clos; ingress/egress chips face the
  // aggregation layer, middle chips interconnect them.
  const int spine_ie = chassis_ports / half;        // e.g. 16 at 128/16
  const int spine_middle = (chassis_ports / 2) / half;  // e.g. 8
  struct SpineBox {
    std::vector<NodeId> ie;
    std::vector<NodeId> middle;
  };
  std::vector<SpineBox> spines(static_cast<std::size_t>(num_spine));
  for (auto& box : spines) {
    for (int i = 0; i < spine_ie; ++i) {
      box.ie.push_back(g.add_node(NodeKind::kSwitch));
    }
    for (int i = 0; i < spine_middle; ++i) {
      box.middle.push_back(g.add_node(NodeKind::kSwitch));
    }
    for (NodeId ie : box.ie) {
      for (NodeId mid : box.middle) {
        g.add_duplex_link(ie, mid, config.link_rate_bps,
                          config.backplane_latency);
      }
    }
    std::vector<NodeId> chips = box.ie;
    chips.insert(chips.end(), box.middle.begin(), box.middle.end());
    ct.spine_chassis.push_back(std::move(chips));
  }

  // --- inter-chassis cabling: aggregation box a's fabric chips expose
  // chassis_ports/2 up-ports; up-port u goes to spine box (u % num_spine),
  // landing on the spine's external port indexed by the agg box.
  for (int a = 0; a < num_agg; ++a) {
    for (int u = 0; u < chassis_ports / 2; ++u) {
      const int s = u % num_spine;
      const NodeId agg_fabric =
          aggs[static_cast<std::size_t>(a)]
              .fabrics[static_cast<std::size_t>(u / half)];
      // Spine external port index: spread the (agg, uplink) pairs evenly
      // over the spine's ingress chips.
      const int spine_port =
          (a * (chassis_ports / 2 / num_spine) + u / num_spine) %
          chassis_ports;
      const NodeId spine_ie_chip =
          spines[static_cast<std::size_t>(s)]
              .ie[static_cast<std::size_t>(spine_port / half)];
      g.add_duplex_link(agg_fabric, spine_ie_chip, config.link_rate_bps,
                        config.fabric_link_latency);
    }
  }
  return ct;
}

int chip_hops(const Graph& graph, NodeId src_host, NodeId dst_host) {
  const auto path = routing::shortest_path(graph, src_host, dst_host);
  if (!path) return -1;
  return path->hops() - 1;  // links minus one = switch chips crossed
}

}  // namespace pnet::topo
