#include "topo/xpander.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace pnet::topo {

Xpander build_xpander(const XpanderConfig& config) {
  const int d = config.network_degree;
  const int lift = config.lift;
  if (d < 2) throw std::invalid_argument("xpander: degree must be >= 2");
  if (lift < 1) throw std::invalid_argument("xpander: lift must be >= 1");

  Rng rng(config.seed);
  Xpander x;
  x.network_degree = d;
  Graph& g = x.graph;

  const int num_metanodes = d + 1;
  // Switches, grouped by metanode: switch (m, i) has index m * lift + i.
  for (int m = 0; m < num_metanodes; ++m) {
    for (int i = 0; i < lift; ++i) {
      x.switch_nodes.push_back(g.add_node(NodeKind::kSwitch));
    }
  }

  // One random perfect matching per metanode pair. Each switch gains one
  // link per other metanode, i.e. exactly d network links.
  for (int a = 0; a < num_metanodes; ++a) {
    for (int b = a + 1; b < num_metanodes; ++b) {
      const auto matching = rng.permutation(lift);
      for (int i = 0; i < lift; ++i) {
        const NodeId sa =
            x.switch_nodes[static_cast<std::size_t>(a * lift + i)];
        const NodeId sb = x.switch_nodes[static_cast<std::size_t>(
            b * lift + matching[static_cast<std::size_t>(i)])];
        g.add_duplex_link(sa, sb, config.link_rate_bps,
                          config.fabric_link_latency);
      }
    }
  }

  for (int s = 0; s < x.num_switches(); ++s) {
    for (int h = 0; h < config.hosts_per_switch; ++h) {
      const int local = static_cast<int>(x.host_nodes.size());
      const NodeId host =
          g.add_node(NodeKind::kHost, HostId{config.first_host_index + local});
      x.host_nodes.push_back(host);
      g.add_duplex_link(host, x.switch_nodes[static_cast<std::size_t>(s)],
                        config.link_rate_bps, config.host_link_latency);
    }
  }
  return x;
}

}  // namespace pnet::topo
