// Xpander topology builder (Valadarsky et al., CoNEXT'16 [42]) — the
// paper's second expander-graph candidate for heterogeneous P-Net planes
// (§3.2 cites both Jellyfish's random and Xpander's pseudorandom
// construction).
//
// An Xpander is a lift of the complete graph K_{d+1}: d+1 "metanodes" of
// `lift` switches each; every metanode pair is wired by a random perfect
// matching between their switch sets. Every switch gets exactly d network
// links, the graph is d-regular and deterministic given a seed, and
// different seeds give the distinct-instantiation property heterogeneous
// P-Nets rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/graph.hpp"

namespace pnet::topo {

struct XpanderConfig {
  int network_degree = 8;    // d: also the number of metanodes - 1
  int lift = 8;              // switches per metanode
  int hosts_per_switch = 4;
  double link_rate_bps = 100e9;
  SimTime host_link_latency = units::kMicrosecond / 2;
  SimTime fabric_link_latency = units::kMicrosecond;
  std::uint64_t seed = 1;
  int first_host_index = 0;
};

struct Xpander {
  Graph graph;
  std::vector<NodeId> host_nodes;
  std::vector<NodeId> switch_nodes;   // (d+1) * lift switches
  int network_degree = 0;

  [[nodiscard]] int num_hosts() const {
    return static_cast<int>(host_nodes.size());
  }
  [[nodiscard]] int num_switches() const {
    return static_cast<int>(switch_nodes.size());
  }
  /// The metanode a switch belongs to.
  [[nodiscard]] int metanode_of_switch(int switch_index) const {
    return switch_index / (num_switches() / (network_degree + 1));
  }
};

Xpander build_xpander(const XpanderConfig& config);

}  // namespace pnet::topo
