#include "topo/parallel.hpp"

#include <cmath>
#include <stdexcept>

namespace pnet::topo {

std::string to_string(NetworkType type) {
  switch (type) {
    case NetworkType::kSerialLow: return "serial-low-bw";
    case NetworkType::kParallelHomogeneous: return "parallel-homogeneous";
    case NetworkType::kParallelHeterogeneous: return "parallel-heterogeneous";
    case NetworkType::kSerialHigh: return "serial-high-bw";
  }
  return "?";
}

std::string to_string(TopoKind kind) {
  switch (kind) {
    case TopoKind::kFatTree: return "fat-tree";
    case TopoKind::kJellyfish: return "jellyfish";
    case TopoKind::kXpander: return "xpander";
  }
  return "?";
}

namespace {

struct JellyfishShape {
  int switches;
  int degree;
  int hosts_per_switch;
};

/// Picks a Jellyfish shape for a host target. Mirrors the Jellyfish paper's
/// full-bisection guidance: with k-port switches, r = ceil(2k/3) network
/// ports and k - r host ports. We derive a shape whose host count is >= the
/// target and whose switch count keeps n*r even.
JellyfishShape derive_jellyfish_shape(const NetworkSpec& spec) {
  if (spec.jf_switches > 0) {
    return {spec.jf_switches, spec.jf_degree, spec.jf_hosts_per_switch};
  }
  // Default split for a 14-port chip (the paper's 686-host exemplar is a
  // k=14 fat tree equivalent): 4 host-facing ports and 10 network ports per
  // switch. Full throughput on a random regular graph needs roughly
  // degree >= hosts_per_switch * average-path-length (Jellyfish paper's
  // sizing guidance, r ~ 2k/3 of the chip's ports plus margin), which a
  // 1:2.5 split satisfies at the scales used here.
  const int hosts_per_switch = 4;
  const int degree = 10;
  int switches =
      (spec.hosts + hosts_per_switch - 1) / hosts_per_switch;
  if (switches <= degree) switches = degree + 1;
  if (switches * degree % 2 != 0) ++switches;
  return {switches, degree, hosts_per_switch};
}

Plane build_fat_tree_plane(const NetworkSpec& spec, double rate) {
  FatTreeConfig config;
  config.k = fat_tree_k_for_hosts(spec.hosts);
  config.link_rate_bps = rate;
  config.host_link_latency = spec.host_latency;
  config.fabric_link_latency = spec.fabric_latency;
  FatTree ft = build_fat_tree(config);

  Plane plane;
  plane.graph = std::move(ft.graph);
  plane.host_nodes = std::move(ft.host_nodes);
  plane.switch_nodes = std::move(ft.edge_switches);
  plane.switch_nodes.insert(plane.switch_nodes.end(),
                            ft.agg_switches.begin(), ft.agg_switches.end());
  plane.switch_nodes.insert(plane.switch_nodes.end(),
                            ft.core_switches.begin(),
                            ft.core_switches.end());
  plane.link_rate_bps = rate;
  return plane;
}

Plane build_xpander_plane(const NetworkSpec& spec, double rate,
                          std::uint64_t seed) {
  XpanderConfig config;
  config.network_degree = 8;
  config.hosts_per_switch = 4;
  const int switches_needed =
      (spec.hosts + config.hosts_per_switch - 1) / config.hosts_per_switch;
  config.lift = (switches_needed + config.network_degree) /
                (config.network_degree + 1);
  config.link_rate_bps = rate;
  config.host_link_latency = spec.host_latency;
  config.fabric_link_latency = spec.fabric_latency;
  config.seed = seed;
  Xpander x = build_xpander(config);

  Plane plane;
  plane.graph = std::move(x.graph);
  plane.host_nodes = std::move(x.host_nodes);
  plane.switch_nodes = std::move(x.switch_nodes);
  plane.link_rate_bps = rate;
  return plane;
}

Plane build_jellyfish_plane(const NetworkSpec& spec, double rate,
                            std::uint64_t seed) {
  const JellyfishShape shape = derive_jellyfish_shape(spec);
  JellyfishConfig config;
  config.num_switches = shape.switches;
  config.network_degree = shape.degree;
  config.hosts_per_switch = shape.hosts_per_switch;
  config.link_rate_bps = rate;
  config.host_link_latency = spec.host_latency;
  config.fabric_link_latency = spec.fabric_latency;
  config.seed = seed;
  Jellyfish jf = build_jellyfish(config);

  Plane plane;
  plane.graph = std::move(jf.graph);
  plane.host_nodes = std::move(jf.host_nodes);
  plane.switch_nodes = std::move(jf.switch_nodes);
  plane.link_rate_bps = rate;
  return plane;
}

}  // namespace

ParallelNetwork build_network(const NetworkSpec& spec) {
  if (spec.parallelism < 1) {
    throw std::invalid_argument("parallelism must be >= 1");
  }

  const bool parallel = spec.type == NetworkType::kParallelHomogeneous ||
                        spec.type == NetworkType::kParallelHeterogeneous;
  const int num_planes = parallel ? spec.parallelism : 1;
  const double rate = spec.type == NetworkType::kSerialHigh
                          ? spec.base_rate_bps * spec.parallelism
                          : spec.base_rate_bps;

  std::vector<Plane> planes;
  planes.reserve(static_cast<std::size_t>(num_planes));
  for (int p = 0; p < num_planes; ++p) {
    // Homogeneous planes reuse the base seed: every plane is the *same*
    // instantiation, as in a replicated deployment. Heterogeneous planes
    // get independent seeds, which is the whole point of section 3.2.
    const std::uint64_t seed =
        spec.type == NetworkType::kParallelHeterogeneous
            ? spec.seed + static_cast<std::uint64_t>(p) * 0x51ED2701ULL
            : spec.seed;
    switch (spec.topo) {
      case TopoKind::kFatTree:
        planes.push_back(build_fat_tree_plane(spec, rate));
        break;
      case TopoKind::kJellyfish:
        planes.push_back(build_jellyfish_plane(spec, rate, seed));
        break;
      case TopoKind::kXpander:
        planes.push_back(build_xpander_plane(spec, rate, seed));
        break;
    }
  }

  int hosts_per_rack = 0;
  switch (spec.topo) {
    case TopoKind::kFatTree:
      hosts_per_rack = fat_tree_k_for_hosts(spec.hosts) / 2;
      break;
    case TopoKind::kJellyfish:
      hosts_per_rack = derive_jellyfish_shape(spec).hosts_per_switch;
      break;
    case TopoKind::kXpander:
      hosts_per_rack = 4;
      break;
  }
  return ParallelNetwork(spec, std::move(planes), hosts_per_rack);
}

}  // namespace pnet::topo
