// Three-tier k-ary fat tree (folded Clos) builder, per Al-Fares et al. [5].
//
//   * k pods; each pod has k/2 edge (ToR) and k/2 aggregation switches;
//   * (k/2)^2 core switches;
//   * each edge switch serves k/2 hosts, so the fabric hosts k^3/4 machines.
//
// This is the per-dataplane building block for both the "serial" baselines
// and the homogeneous P-Net planes of the paper (Figs 2 and 4).
#pragma once

#include <vector>

#include "topo/graph.hpp"

namespace pnet::topo {

struct FatTreeConfig {
  int k = 8;                                  // switch radix; must be even
  double link_rate_bps = 100e9;               // per the paper's 100G baseline
  SimTime host_link_latency = units::kMicrosecond / 2;  // 100 m in-rack run
  SimTime fabric_link_latency = units::kMicrosecond;    // 200 m per core hop
  /// First global host index assigned (planes of a P-Net share host ids).
  int first_host_index = 0;
};

struct FatTree {
  Graph graph;
  int k = 0;
  std::vector<NodeId> host_nodes;   // indexed by local host index
  std::vector<NodeId> edge_switches;
  std::vector<NodeId> agg_switches;
  std::vector<NodeId> core_switches;

  [[nodiscard]] int num_hosts() const {
    return static_cast<int>(host_nodes.size());
  }
  /// The pod a host belongs to.
  [[nodiscard]] int pod_of_host(int host_index) const {
    return host_index / (k * k / 4);
  }
  /// The edge switch (rack) a host attaches to.
  [[nodiscard]] int rack_of_host(int host_index) const {
    return host_index / (k / 2);
  }
};

FatTree build_fat_tree(const FatTreeConfig& config);

/// Smallest even k whose fat tree holds at least `hosts` machines.
int fat_tree_k_for_hosts(int hosts);

}  // namespace pnet::topo
