#include "routing/shortest.hpp"

#include <algorithm>
#include <queue>

namespace pnet::routing {

namespace {

/// Hosts forward nothing: only the search source may be expanded if it is a
/// host.
bool can_transit(const topo::Graph& g, NodeId node, NodeId src) {
  return node == src || !g.is_host(node);
}

Path reconstruct(const std::vector<LinkId>& parent_link, NodeId src,
                 NodeId dst, const topo::Graph& g) {
  Path path;
  NodeId at = dst;
  while (at != src) {
    const LinkId incoming = parent_link[static_cast<std::size_t>(at.v)];
    path.links.push_back(incoming);
    at = g.link(incoming).src;
  }
  std::reverse(path.links.begin(), path.links.end());
  return path;
}

}  // namespace

std::vector<int> bfs_hops(const topo::Graph& g, NodeId src,
                          const std::vector<bool>* banned_links) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()),
                        kUnreachable);
  dist[static_cast<std::size_t>(src.v)] = 0;
  std::queue<NodeId> frontier;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    if (!can_transit(g, u, src)) continue;
    for (LinkId id : g.out_links(u)) {
      if (banned_links != nullptr &&
          (*banned_links)[static_cast<std::size_t>(id.v)]) {
        continue;
      }
      const NodeId v = g.link(id).dst;
      if (dist[static_cast<std::size_t>(v.v)] == kUnreachable) {
        dist[static_cast<std::size_t>(v.v)] =
            dist[static_cast<std::size_t>(u.v)] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::optional<Path> shortest_path(const topo::Graph& g, NodeId src,
                                  NodeId dst,
                                  const std::vector<bool>* banned_links) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()),
                        kUnreachable);
  std::vector<LinkId> parent_link(static_cast<std::size_t>(g.num_nodes()));
  dist[static_cast<std::size_t>(src.v)] = 0;
  std::queue<NodeId> frontier;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    if (u == dst) break;
    if (!can_transit(g, u, src)) continue;
    for (LinkId id : g.out_links(u)) {
      if (banned_links != nullptr &&
          (*banned_links)[static_cast<std::size_t>(id.v)]) {
        continue;
      }
      const NodeId v = g.link(id).dst;
      if (dist[static_cast<std::size_t>(v.v)] == kUnreachable) {
        dist[static_cast<std::size_t>(v.v)] =
            dist[static_cast<std::size_t>(u.v)] + 1;
        parent_link[static_cast<std::size_t>(v.v)] = id;
        frontier.push(v);
      }
    }
  }
  if (dist[static_cast<std::size_t>(dst.v)] == kUnreachable) {
    return std::nullopt;
  }
  return reconstruct(parent_link, src, dst, g);
}

std::optional<Path> dijkstra(const topo::Graph& g, NodeId src, NodeId dst,
                             const LinkWeights& weights,
                             const std::vector<bool>& banned_links,
                             const std::vector<bool>& banned_nodes) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(g.num_nodes()), kInf);
  std::vector<LinkId> parent_link(static_cast<std::size_t>(g.num_nodes()));

  auto node_banned = [&](NodeId n) {
    return !banned_nodes.empty() && banned_nodes[static_cast<std::size_t>(n.v)];
  };
  auto link_banned = [&](LinkId l) {
    return !banned_links.empty() && banned_links[static_cast<std::size_t>(l.v)];
  };
  if (node_banned(src) || node_banned(dst)) return std::nullopt;

  using Entry = std::pair<double, std::int32_t>;  // (dist, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[static_cast<std::size_t>(src.v)] = 0.0;
  heap.emplace(0.0, src.v);
  while (!heap.empty()) {
    const auto [d, uv] = heap.top();
    heap.pop();
    const NodeId u{uv};
    if (d > dist[static_cast<std::size_t>(uv)]) continue;
    if (u == dst) break;
    if (!can_transit(g, u, src)) continue;
    for (LinkId id : g.out_links(u)) {
      if (link_banned(id)) continue;
      const NodeId v = g.link(id).dst;
      if (node_banned(v)) continue;
      const double nd = d + weights[static_cast<std::size_t>(id.v)];
      if (nd < dist[static_cast<std::size_t>(v.v)]) {
        dist[static_cast<std::size_t>(v.v)] = nd;
        parent_link[static_cast<std::size_t>(v.v)] = id;
        heap.emplace(nd, v.v);
      }
    }
  }
  if (dist[static_cast<std::size_t>(dst.v)] == kInf) return std::nullopt;
  return reconstruct(parent_link, src, dst, g);
}

std::vector<std::vector<int>> all_pairs_switch_hops(
    const topo::Graph& g, const std::vector<NodeId>& switches) {
  std::vector<std::vector<int>> out;
  out.reserve(switches.size());
  for (NodeId s : switches) {
    const std::vector<int> dist = bfs_hops(g, s);
    std::vector<int> row;
    row.reserve(switches.size());
    for (NodeId t : switches) {
      row.push_back(dist[static_cast<std::size_t>(t.v)]);
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace pnet::routing
