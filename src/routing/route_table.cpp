#include "routing/route_table.hpp"

#include <cassert>

#include "util/rng.hpp"

namespace pnet::routing {

namespace {

std::uint64_t content_hash(int plane, std::span<const LinkId> links) {
  std::uint64_t h = mix64(0x9E3779B97F4A7C15ULL ^
                          static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(plane)));
  for (LinkId id : links) {
    h = mix64(h ^ static_cast<std::uint64_t>(
                      static_cast<std::uint32_t>(id.v)));
  }
  return h;
}

}  // namespace

RouteTable::RouteTable() {
  // Reserve the chunk-pointer directory up front so growing the table never
  // relocates it: concurrent readers index chunks_ without a lock (see the
  // RouteCache synchronization contract), which is only safe because
  // push_back below this capacity writes a fresh slot instead of
  // reallocating. 4096 slabs = 2^28 links, far beyond any experiment.
  chunks_.reserve(4096);
}

PathRef RouteTable::intern(int plane, std::span<const LinkId> links) {
  assert(links.size() < kChunkLinks && "path longer than an arena slab");
  const std::uint64_t hash = content_hash(plane, links);
  auto& bucket = dedup_[hash];
  for (const PathRef& ref : bucket) {
    if (ref.plane != plane || ref.len != links.size()) continue;
    const LinkId* stored = data(ref.offset);
    bool same = true;
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (stored[i] != links[i]) {
        same = false;
        break;
      }
    }
    if (same) return ref;
  }

  // A path never straddles slabs: pad to the next slab when it won't fit.
  const std::size_t room = chunks_.size() * kChunkLinks - next_offset_;
  if (links.size() > room) next_offset_ = chunks_.size() * kChunkLinks;
  if (next_offset_ + links.size() > chunks_.size() * kChunkLinks) {
    chunks_.push_back(std::make_unique<LinkId[]>(kChunkLinks));
  }

  PathRef ref;
  ref.plane = plane;
  ref.offset = static_cast<std::uint32_t>(next_offset_);
  ref.len = static_cast<std::uint32_t>(links.size());
  LinkId* out = chunks_[next_offset_ / kChunkLinks].get() +
                next_offset_ % kChunkLinks;
  for (std::size_t i = 0; i < links.size(); ++i) out[i] = links[i];
  next_offset_ += links.size();
  links_stored_ += links.size();
  ++paths_;
  bucket.push_back(ref);
  return ref;
}

}  // namespace pnet::routing
