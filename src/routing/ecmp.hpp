// ECMP path enumeration and per-flow hashing.
//
// enumerate_shortest_paths lists the equal-cost shortest paths a standard
// ECMP dataplane spreads over (the shortest-path DAG's paths), capped to
// keep fat-tree core fan-outs tractable. ecmp_pick hashes flow identifiers
// to one of those paths, the way a switch hashes the five-tuple.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/path.hpp"

namespace pnet::routing {

/// All (up to `cap`) fewest-hop paths from src to dst, found by DFS over the
/// shortest-path DAG. Deterministic order (link-id lexicographic).
/// `banned_links` (optional, indexed by LinkId::v) excludes failed links;
/// cables must be banned in both directions (duplex pairs) so the reversed
/// BFS distance trick stays valid.
std::vector<Path> enumerate_shortest_paths(const topo::Graph& g, NodeId src,
                                           NodeId dst, int cap = 256,
                                           const std::vector<bool>*
                                               banned_links = nullptr);

/// Stable per-flow choice among `count` equal options; `flow_key` identifies
/// the flow (e.g. mix of src, dst and flow index).
int ecmp_pick(std::uint64_t flow_key, int count);

}  // namespace pnet::routing
