#include "routing/path.hpp"

#include <unordered_set>

namespace pnet::routing {

bool is_valid_path(const topo::Graph& g, const Path& path, NodeId src,
                   NodeId dst) {
  if (path.empty()) return false;
  if (path.src(g) != src || path.dst(g) != dst) return false;
  std::unordered_set<std::int32_t> seen;
  NodeId at = src;
  seen.insert(at.v);
  for (LinkId id : path.links) {
    const topo::Link& link = g.link(id);
    if (link.src != at) return false;
    at = link.dst;
    if (!seen.insert(at.v).second) return false;  // revisited a node
  }
  return at == dst;
}

}  // namespace pnet::routing
