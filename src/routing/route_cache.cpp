#include "routing/route_cache.hpp"

#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "util/rng.hpp"

namespace pnet::routing {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::size_t RouteCache::QueryHash::operator()(const RouteQuery& q) const {
  std::uint64_t h = mix64(static_cast<std::uint64_t>(q.kind) ^
                          0xC0FFEE123456789ULL);
  h = mix64(h ^ (static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(q.src.v))
                 << 32 | static_cast<std::uint32_t>(q.dst.v)));
  h = mix64(h ^ (static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(q.plane))
                 << 32 | static_cast<std::uint32_t>(q.k)));
  h = mix64(h ^ static_cast<std::uint32_t>(q.total_cap));
  h = mix64(h ^ q.tiebreak_seed);
  return static_cast<std::size_t>(h);
}

bool RouteCache::enabled_by_env() {
  const char* v = std::getenv("PNET_ROUTE_CACHE");
  if (v == nullptr) return true;
  return std::strcmp(v, "off") != 0 && std::strcmp(v, "0") != 0 &&
         std::strcmp(v, "false") != 0;
}

RouteCache::RouteCache(bool enabled) : enabled_(enabled) {}

void RouteCache::bind(const topo::ParallelNetwork& net) {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (bound_.load(std::memory_order_relaxed)) {
    // All nets sharing one cache must share one layout (identical
    // topologies, e.g. trials of an experiment cell).
    assert(plane_offsets_.size() ==
           static_cast<std::size_t>(net.num_planes()) + 1);
    assert(total_links_ == plane_offsets_.back());
    return;
  }
  plane_offsets_.resize(static_cast<std::size_t>(net.num_planes()) + 1, 0);
  for (int p = 0; p < net.num_planes(); ++p) {
    plane_offsets_[static_cast<std::size_t>(p) + 1] =
        plane_offsets_[static_cast<std::size_t>(p)] +
        static_cast<std::size_t>(net.plane(p).graph.num_links());
  }
  total_links_ = plane_offsets_.back();
  link_epochs_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(total_links_);
  link_down_ = std::make_unique<std::atomic<bool>[]>(total_links_);
  for (std::size_t i = 0; i < total_links_; ++i) {
    link_epochs_[i].store(0, std::memory_order_relaxed);
    link_down_[i].store(false, std::memory_order_relaxed);
  }
  // Release: publishes plane_offsets_/link arrays to lock-free readers.
  bound_.store(true, std::memory_order_release);
}

void RouteCache::set_link_state(int plane, LinkId link, bool down) {
  std::lock_guard<std::mutex> lock(state_mu_);
  assert(bound_.load(std::memory_order_relaxed) &&
         "bind() the cache before reporting link events");
  // Duplex cables are constructed as adjacent directed twins (id, id^1);
  // a cable fault takes out both directions, and banning both keeps the
  // reversed-BFS trick in ECMP enumeration valid.
  const LinkId twin{link.v ^ 1};
  const std::uint64_t next =
      global_epoch_.load(std::memory_order_relaxed) + 1;
  bool changed = false;
  for (const LinkId id : {link, twin}) {
    const std::size_t g = global_link(plane, id);
    if (link_down_[g].load(std::memory_order_relaxed) == down) continue;
    link_down_[g].store(down, std::memory_order_relaxed);
    // Stamp the link BEFORE publishing the epoch: a validator racing with
    // us either sees the old global epoch (and keeps its old verdict) or
    // the new link epoch (and conservatively invalidates). Never the
    // reverse.
    link_epochs_[g].store(next, std::memory_order_release);
    down_count_.fetch_add(down ? 1 : std::size_t(-1),
                          std::memory_order_relaxed);
    changed = true;
  }
  if (changed) global_epoch_.store(next, std::memory_order_release);
}

void RouteCache::snapshot_bans(
    const topo::ParallelNetwork& net, const RouteQuery& q, PlaneBans& bans,
    bool& any, std::vector<std::pair<std::int32_t, LinkId>>& avoided) {
  any = false;
  if (down_count_.load(std::memory_order_acquire) == 0) return;
  bans.assign(static_cast<std::size_t>(net.num_planes()), {});
  const int only_plane = q.kind == RouteKind::kEcmpPlane ? q.plane : -1;
  for (int p = 0; p < net.num_planes(); ++p) {
    if (only_plane >= 0 && p != only_plane) continue;
    const std::size_t begin = plane_offsets_[static_cast<std::size_t>(p)];
    const std::size_t end = plane_offsets_[static_cast<std::size_t>(p) + 1];
    for (std::size_t g = begin; g < end; ++g) {
      if (!link_down_[g].load(std::memory_order_acquire)) continue;
      auto& mask = bans[static_cast<std::size_t>(p)];
      if (mask.empty()) mask.resize(end - begin, false);
      const LinkId local{static_cast<std::int32_t>(g - begin)};
      mask[static_cast<std::size_t>(local.v)] = true;
      avoided.emplace_back(p, local);
      any = true;
    }
  }
}

std::vector<Path> RouteCache::compute(const topo::ParallelNetwork& net,
                                      const RouteQuery& q,
                                      const PlaneBans* bans) {
  switch (q.kind) {
    case RouteKind::kKsp:
      return ksp_across_planes(net, q.src, q.dst, q.k, q.tiebreak_seed,
                               q.total_cap, bans);
    case RouteKind::kShortestPerPlane:
      return shortest_per_plane(net, q.src, q.dst, bans);
    case RouteKind::kEcmpPlane:
      return ecmp_paths_in_plane(net, q.plane, q.src, q.dst, q.k, bans);
  }
  return {};
}

std::shared_ptr<RouteEntry> RouteCache::build_entry(
    const topo::ParallelNetwork& net, const RouteQuery& q,
    RouteTable& table) {
  auto entry = std::make_shared<RouteEntry>();
  PlaneBans bans;
  bool any_bans = false;
  // Read the epoch BEFORE computing: events landing mid-compute then look
  // newer than the entry and trigger a recompute, never a silent miss.
  entry->epoch_ = global_epoch_.load(std::memory_order_acquire);
  snapshot_bans(net, q, bans, any_bans, entry->avoided_);

  const std::uint64_t t0 = now_ns();
  std::vector<Path> paths = compute(net, q, any_bans ? &bans : nullptr);
  compute_ns_.fetch_add(now_ns() - t0, std::memory_order_relaxed);

  entry->table_ = &table;
  entry->refs_.reserve(paths.size());
  for (const Path& path : paths) entry->refs_.push_back(table.intern(path));
  entry->checked_epoch_.store(entry->epoch_, std::memory_order_relaxed);
  return entry;
}

bool RouteCache::entry_current(const RouteEntry& entry,
                               std::uint64_t now) const {
  if (entry.epoch_ == now) return true;
  if (entry.checked_epoch_.load(std::memory_order_acquire) == now) {
    return true;
  }
  // Lazy scan: stale iff a traversed link changed after compute, or a link
  // we routed around is back up.
  for (const PathRef& ref : entry.refs_) {
    const PathView view = entry.table_->view(ref);
    for (const LinkId id : view.links()) {
      const std::size_t g = global_link(view.plane(), id);
      if (link_epochs_[g].load(std::memory_order_acquire) > entry.epoch_) {
        return false;
      }
    }
  }
  for (const auto& [plane, link] : entry.avoided_) {
    if (!link_down_[global_link(plane, link)].load(
            std::memory_order_acquire)) {
      return false;
    }
  }
  entry.checked_epoch_.store(now, std::memory_order_release);
  return true;
}

bool RouteCache::current(const RouteEntry& entry) const {
  return entry_current(entry, global_epoch_.load(std::memory_order_acquire));
}

RouteSnapshot RouteCache::lookup(const topo::ParallelNetwork& net,
                                 const RouteQuery& q) {
  if (!bound_.load(std::memory_order_acquire)) bind(net);

  if (!enabled_) {
    // Pass-through: fresh compute per call, self-contained snapshot.
    auto table = std::make_unique<RouteTable>();
    auto entry = build_entry(net, q, *table);
    entry->owned_table_ = std::move(table);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return entry;
  }

  Shard& shard = shards_[QueryHash{}(q) % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(q);
  if (it != shard.entries.end()) {
    if (entry_current(*it->second,
                      global_epoch_.load(std::memory_order_acquire))) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    // Fall through to recompute; the old snapshot stays valid for holders.
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }

  auto entry = build_entry(net, q, shard.table);
  RouteSnapshot snap = std::move(entry);
  shard.entries[q] = snap;
  return snap;
}

RouteCacheStats RouteCache::stats() const {
  RouteCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  out.compute_ns = compute_ns_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.arena_bytes += shard.table.arena_bytes();
    out.entries += shard.entries.size();
    out.paths += shard.table.num_paths();
  }
  return out;
}

}  // namespace pnet::routing
