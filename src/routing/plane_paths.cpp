#include "routing/plane_paths.hpp"

#include <algorithm>
#include <tuple>

#include "routing/ecmp.hpp"
#include "routing/shortest.hpp"
#include "routing/yen.hpp"

namespace pnet::routing {

std::vector<Path> ksp_across_planes(const topo::ParallelNetwork& net,
                                    HostId src, HostId dst, int k,
                                    std::uint64_t tiebreak_seed,
                                    int total_cap, const PlaneBans* bans) {
  if (total_cap <= 0) total_cap = k;
  // (hops, rank within plane, plane, path): sorting by this tuple yields
  // globally shortest first with round-robin across planes at equal length.
  std::vector<std::tuple<int, int, int>> order;
  std::vector<Path> pool;

  for (int p = 0; p < net.num_planes(); ++p) {
    const topo::Graph& g = net.plane(p).graph;
    LinkWeights jitter;
    if (tiebreak_seed != 0) {
      jitter = jittered_unit_weights(
          g, tiebreak_seed + static_cast<std::uint64_t>(p) * 0x1F3D5B79ULL);
    }
    auto paths = k_shortest_paths(g, net.host_node(p, src),
                                  net.host_node(p, dst), k,
                                  tiebreak_seed != 0 ? &jitter : nullptr,
                                  detail::plane_bans(bans, p));
    for (std::size_t rank = 0; rank < paths.size(); ++rank) {
      paths[rank].plane = p;
      order.emplace_back(paths[rank].hops(), static_cast<int>(rank), p);
      pool.push_back(std::move(paths[rank]));
    }
  }

  std::vector<std::size_t> index(pool.size());
  for (std::size_t i = 0; i < index.size(); ++i) index[i] = i;
  std::sort(index.begin(), index.end(), [&](std::size_t a, std::size_t b) {
    return order[a] < order[b];
  });

  std::vector<Path> out;
  out.reserve(static_cast<std::size_t>(total_cap));
  for (std::size_t i = 0;
       i < index.size() && static_cast<int>(out.size()) < total_cap; ++i) {
    out.push_back(std::move(pool[index[i]]));
  }
  return out;
}

std::vector<Path> shortest_per_plane(const topo::ParallelNetwork& net,
                                     HostId src, HostId dst,
                                     const PlaneBans* bans) {
  std::vector<Path> out;
  for (int p = 0; p < net.num_planes(); ++p) {
    const topo::Graph& g = net.plane(p).graph;
    auto path = shortest_path(g, net.host_node(p, src),
                              net.host_node(p, dst),
                              detail::plane_bans(bans, p));
    if (path) {
      path->plane = p;
      out.push_back(std::move(*path));
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const Path& a, const Path& b) {
    return a.hops() < b.hops();
  });
  return out;
}

std::vector<Path> ecmp_paths_in_plane(const topo::ParallelNetwork& net,
                                      int plane, HostId src, HostId dst,
                                      int cap, const PlaneBans* bans) {
  const topo::Graph& g = net.plane(plane).graph;
  auto paths = enumerate_shortest_paths(g, net.host_node(plane, src),
                                        net.host_node(plane, dst), cap,
                                        detail::plane_bans(bans, plane));
  for (auto& p : paths) p.plane = plane;
  return paths;
}

}  // namespace pnet::routing
