// Yen's K-shortest loopless paths [Yen 1971], the KSP algorithm named by the
// paper (section 4: "MPTCP combined with K shortest paths routing").
//
// The metric is hop count (all fabric links weigh 1), matching Jellyfish and
// the paper's use; ties are broken deterministically by link id so results
// are reproducible across runs.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/path.hpp"
#include "routing/shortest.hpp"

namespace pnet::routing {

/// Up to K loopless shortest paths from src to dst, sorted by (hops, lexico
/// link ids). Fewer than K are returned when the graph has fewer loopless
/// paths.
///
/// `tiebreak_weights` (optional) perturbs the unit hop metric: pass weights
/// of the form 1 + tiny jitter to randomize WHICH equal-hop paths are
/// selected. Without it, the deterministic lexicographic tie-break
/// concentrates every flow's K paths on the same corner of an equal-cost-
/// rich fabric (e.g. the first two aggregation switches of a fat tree),
/// wasting most of the fabric.
///
/// `banned_links` (optional, indexed by LinkId::v) excludes failed links
/// from every search — the base mask a route cache applies when recomputing
/// after faults. Spur-node bans are layered on top of it.
std::vector<Path> k_shortest_paths(const topo::Graph& g, NodeId src,
                                   NodeId dst, int k,
                                   const LinkWeights* tiebreak_weights =
                                       nullptr,
                                   const std::vector<bool>* banned_links =
                                       nullptr);

/// Jittered unit weights for randomized tie-breaking (1 + U[0, 1e-6)).
LinkWeights jittered_unit_weights(const topo::Graph& g, std::uint64_t seed);

}  // namespace pnet::routing
