// Compiled path storage: one flat arena of link ids shared by every path.
//
// Route computation (Yen, ECMP enumeration, per-plane shortest) produces
// heap-heavy std::vector<Path> values; the hot paths of the simulators then
// copy them around per flow. A RouteTable "compiles" those paths instead:
// every link sequence lives in one chunked arena, a path is a 12-byte
// PathRef {plane, offset, len}, identical paths are deduplicated on intern,
// and consumers read through PathView — a non-owning span that supports the
// same accessors as Path without copying.
//
// Storage is chunked (fixed-size slabs that never move) so published paths
// stay readable while another thread interns new ones into the same table;
// see route_cache.hpp for the synchronization contract.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "routing/path.hpp"

namespace pnet::routing {

/// Handle to one interned path. Stable for the lifetime of its RouteTable;
/// meaningless without it.
struct PathRef {
  std::int32_t plane = 0;
  std::uint32_t offset = 0;
  std::uint32_t len = 0;

  friend bool operator==(const PathRef&, const PathRef&) = default;
};

/// Non-owning view of an interned (or any contiguous) link sequence. The
/// cheap replacement for passing routing::Path by value in hot paths.
class PathView {
 public:
  PathView() = default;
  PathView(int plane, std::span<const LinkId> links)
      : plane_(plane), links_(links) {}
  /// View over an ordinary Path (no interning required).
  explicit PathView(const Path& path)
      : plane_(path.plane), links_(path.links) {}

  [[nodiscard]] int plane() const { return plane_; }
  [[nodiscard]] std::span<const LinkId> links() const { return links_; }
  [[nodiscard]] int hops() const { return static_cast<int>(links_.size()); }
  [[nodiscard]] bool empty() const { return links_.empty(); }

  /// Endpoint / latency accessors mirroring Path; invalid id (latency 0) on
  /// an empty view, same contract as Path::src/dst.
  [[nodiscard]] NodeId src(const topo::Graph& g) const {
    return links_.empty() ? NodeId{} : g.link(links_.front()).src;
  }
  [[nodiscard]] NodeId dst(const topo::Graph& g) const {
    return links_.empty() ? NodeId{} : g.link(links_.back()).dst;
  }
  [[nodiscard]] SimTime latency(const topo::Graph& g) const {
    SimTime total = 0;
    for (LinkId id : links_) total += g.link(id).latency;
    return total;
  }

  /// Deep copy back into an owning Path, for the transport boundary.
  [[nodiscard]] Path materialize() const {
    Path path;
    path.plane = plane_;
    path.links.assign(links_.begin(), links_.end());
    return path;
  }

 private:
  int plane_ = 0;
  std::span<const LinkId> links_;
};

/// Arena + dedup index. Append-only: interned paths are never evicted, so
/// PathRefs and PathViews stay valid as long as the table lives.
class RouteTable {
 public:
  RouteTable();

  /// Interns (deduplicating by content) and returns the handle. Not thread
  /// safe; callers serialize interning per table (RouteCache does this with
  /// its shard mutex).
  PathRef intern(const Path& path) {
    return intern(path.plane, std::span<const LinkId>(path.links));
  }
  PathRef intern(int plane, std::span<const LinkId> links);

  /// Resolves a handle produced by this table. Safe to call concurrently
  /// with intern() provided the ref was published with proper
  /// synchronization (interned slabs never move).
  [[nodiscard]] PathView view(const PathRef& ref) const {
    if (ref.len == 0) return {static_cast<int>(ref.plane), {}};
    return {static_cast<int>(ref.plane),
            std::span<const LinkId>(data(ref.offset), ref.len)};
  }

  /// Distinct paths interned (post-dedup).
  [[nodiscard]] std::size_t num_paths() const { return paths_; }
  /// Link ids actually stored (post-dedup, excluding chunk padding).
  [[nodiscard]] std::size_t links_stored() const { return links_stored_; }
  /// Bytes of arena storage allocated (whole chunks).
  [[nodiscard]] std::size_t arena_bytes() const {
    return chunks_.size() * kChunkLinks * sizeof(LinkId);
  }

 private:
  /// 64K links (256 KiB) per slab; a path never spans two slabs.
  static constexpr std::size_t kChunkLinks = std::size_t{1} << 16;

  [[nodiscard]] const LinkId* data(std::uint32_t offset) const {
    return chunks_[offset / kChunkLinks].get() + offset % kChunkLinks;
  }

  std::vector<std::unique_ptr<LinkId[]>> chunks_;
  std::size_t next_offset_ = 0;  // first free arena slot
  std::size_t links_stored_ = 0;
  std::size_t paths_ = 0;
  /// Content hash -> refs with that hash (chained for collisions).
  std::unordered_map<std::uint64_t, std::vector<PathRef>> dedup_;
};

}  // namespace pnet::routing
