// Table-driven forwarding state — the counterpart to the source routing
// the simulator uses. §3.4 argues for end-host routing partly because of
// "the limited memory constraint on commodity switches in order to support
// routing over multiple dataplanes": this module builds the per-switch
// ECMP next-hop tables a conventional deployment would install and
// quantifies that state, so the claim can be checked numerically
// (bench_ablation_memory).
//
// Because P-Net planes are independent, each plane's switches only carry
// that plane's destinations — total state grows linearly with planes while
// per-switch state stays flat, unlike a serial network of equal capacity
// whose (larger-radix or multi-tier) switches hold everything.
#pragma once

#include <vector>

#include "routing/path.hpp"
#include "topo/parallel.hpp"

namespace pnet::routing {

/// Per-switch ECMP forwarding table: for every destination ToR, the set of
/// out-links on a shortest path toward it.
struct ForwardingTable {
  NodeId switch_node;
  /// next_hops[d] = equal-cost out-links toward destination ToR index d
  /// (empty for the switch's own index, or if unreachable).
  std::vector<std::vector<LinkId>> next_hops;

  /// Total ECMP entries (destination, next-hop) — the TCAM/RIB footprint.
  [[nodiscard]] std::size_t entries() const {
    std::size_t total = 0;
    for (const auto& hops : next_hops) total += hops.size();
    return total;
  }
};

/// Builds the ECMP tables for every switch of one plane (destinations are
/// the plane's ToRs/switches).
std::vector<ForwardingTable> build_plane_tables(const topo::Graph& graph,
                                                const std::vector<NodeId>&
                                                    switches);

struct ForwardingFootprint {
  std::size_t switches = 0;
  std::size_t total_entries = 0;
  std::size_t max_entries_per_switch = 0;
  double mean_entries_per_switch = 0.0;
};

/// Aggregate table state across every plane of the network.
ForwardingFootprint forwarding_footprint(const topo::ParallelNetwork& net);

/// Validates that hop-by-hop table lookups reach every destination in the
/// same hop count as shortest paths (used by tests; returns false on any
/// mismatch).
bool tables_cover_all_pairs(const topo::Graph& graph,
                            const std::vector<NodeId>& switches,
                            const std::vector<ForwardingTable>& tables);

}  // namespace pnet::routing
