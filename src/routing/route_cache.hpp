// Shared route cache with epoch-based incremental invalidation.
//
// Route computation (Yen's KSP across planes, ECMP enumeration, per-plane
// shortest paths) dominates setup time for large experiments, and every
// consumer used to keep its own private per-pair cache (core::PathSelector)
// or recompute per flow (fsim). RouteCache centralizes that: entries are
// keyed by the full policy-relevant query (src, dst, scheme, k, caps,
// tie-break seed), path link sequences are interned into per-shard
// RouteTable arenas, and consumers receive RouteSnapshots — shared_ptrs to
// immutable entries exposing PathViews, so the hot path never copies a
// vector<Path>.
//
// Invalidation contract (the fault path):
//   * set_link_state(plane, link, down) records the new state for BOTH
//     directions of the duplex cable (graph construction pairs them as
//     id and id^1), stamps the touched links with a fresh global epoch, and
//     publishes the epoch.
//   * A lookup revalidates its entry lazily: if the global epoch moved, the
//     entry is stale iff (a) one of its paths traverses a link whose epoch
//     is newer than the entry's compute epoch — a traversed link failed —
//     or (b) a link the compute avoided (down at compute time, in a plane
//     the query can use) is now up — a relevant link recovered. Only such
//     entries are recomputed; everything else revalidates in O(1) via a
//     cached checked-epoch.
//   * Entries are recomputed with the current down set as banned links, so
//     post-fault paths route around dead cables.
//   Plane-level failures are deliberately NOT cache events: consumers
//   filter by plane at selection time (core::PathSelector::plane_usable),
//   which keeps plane flaps cheap and keeps cached content identical to the
//   cache-less baseline.
//
// Concurrency: lookups for the same key serialize on the key's shard mutex
// (compute happens under it, so one thread computes while others for the
// same shard wait — distinct shards proceed in parallel). A returned
// snapshot may be read lock-free after the lookup returns: RouteTable
// arenas are chunked slabs that never move and entries are immutable.
// Determinism: an entry's content is a pure function of the network
// structure, the query, and the current down set — never of thread timing —
// so a cache shared across worker threads yields bit-identical results to
// private caches.
//
// PNET_ROUTE_CACHE=off (or "0"/"false") switches every cache constructed
// with default enablement into pass-through mode: each lookup computes
// fresh (still applying the down set) and returns a self-contained
// snapshot. Results are byte-identical to cached mode; only the counters
// differ. This is the escape hatch for A/B-ing suspected cache bugs.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "routing/plane_paths.hpp"
#include "routing/route_table.hpp"
#include "topo/parallel.hpp"

namespace pnet::routing {

/// What a consumer wants cached. The key includes every knob that affects
/// the computed paths, so two selectors with different policies never alias.
enum class RouteKind : std::uint8_t {
  kKsp,              // ksp_across_planes(k, tiebreak_seed, total_cap)
  kShortestPerPlane, // shortest_per_plane()
  kEcmpPlane,        // ecmp_paths_in_plane(plane, cap) — cap rides in `k`
};

struct RouteQuery {
  RouteKind kind = RouteKind::kShortestPerPlane;
  HostId src;
  HostId dst;
  std::int32_t plane = -1;  // kEcmpPlane only
  std::int32_t k = 0;       // kKsp: per-plane K; kEcmpPlane: enumeration cap
  std::int32_t total_cap = 0;       // kKsp: merged cap (0 = k)
  std::uint64_t tiebreak_seed = 0;  // kKsp only

  static RouteQuery ksp(HostId src, HostId dst, int k,
                        std::uint64_t tiebreak_seed, int total_cap = 0) {
    RouteQuery q;
    q.kind = RouteKind::kKsp;
    q.src = src;
    q.dst = dst;
    q.k = k;
    q.total_cap = total_cap;
    q.tiebreak_seed = tiebreak_seed;
    return q;
  }
  static RouteQuery shortest_per_plane(HostId src, HostId dst) {
    RouteQuery q;
    q.kind = RouteKind::kShortestPerPlane;
    q.src = src;
    q.dst = dst;
    return q;
  }
  static RouteQuery ecmp_plane(HostId src, HostId dst, int plane, int cap) {
    RouteQuery q;
    q.kind = RouteKind::kEcmpPlane;
    q.src = src;
    q.dst = dst;
    q.plane = plane;
    q.k = cap;
    return q;
  }

  friend bool operator==(const RouteQuery&, const RouteQuery&) = default;
};

/// One immutable cached result. Resolved views stay valid as long as the
/// owning RouteCache lives (pass-through entries own their table and are
/// self-contained).
class RouteEntry {
 public:
  [[nodiscard]] std::size_t size() const { return refs_.size(); }
  [[nodiscard]] bool empty() const { return refs_.empty(); }
  [[nodiscard]] PathView view(std::size_t i) const {
    return table_->view(refs_[i]);
  }
  /// Deep copy of every path, for the transport boundary.
  [[nodiscard]] std::vector<Path> materialize() const {
    std::vector<Path> out;
    out.reserve(refs_.size());
    for (const PathRef& ref : refs_) out.push_back(table_->view(ref).materialize());
    return out;
  }

 private:
  friend class RouteCache;

  const RouteTable* table_ = nullptr;
  std::unique_ptr<RouteTable> owned_table_;  // pass-through mode only
  std::vector<PathRef> refs_;
  /// Global epoch when this entry was computed.
  std::uint64_t epoch_ = 0;
  /// Last global epoch at which a lazy scan proved the entry still valid
  /// (O(1) fast path for repeat lookups between fault events).
  mutable std::atomic<std::uint64_t> checked_epoch_{0};
  /// (plane, link) pairs that were down — and therefore banned — at compute
  /// time, restricted to planes this query can use. If any comes back up,
  /// the entry is stale (a better path may exist).
  std::vector<std::pair<std::int32_t, LinkId>> avoided_;
};

using RouteSnapshot = std::shared_ptr<const RouteEntry>;

struct RouteCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Stale entries recomputed after fault/recovery events.
  std::uint64_t invalidations = 0;
  /// Wall time spent inside path computation (all threads summed).
  std::uint64_t compute_ns = 0;
  std::size_t arena_bytes = 0;
  std::size_t entries = 0;
  /// Distinct interned paths across shards (post-dedup).
  std::size_t paths = 0;
};

class RouteCache {
 public:
  /// `enabled` = false builds a pass-through cache (see header comment).
  explicit RouteCache(bool enabled = enabled_by_env());

  RouteCache(const RouteCache&) = delete;
  RouteCache& operator=(const RouteCache&) = delete;

  /// False when PNET_ROUTE_CACHE is "off"/"0"/"false" in the environment.
  static bool enabled_by_env();

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Binds the cache to a network layout (per-plane link counts). Called
  /// automatically by lookup(); call it explicitly before the first
  /// set_link_state(). Every net passed to this cache must share one
  /// layout (e.g. identical topologies across trials of an experiment
  /// cell).
  void bind(const topo::ParallelNetwork& net);

  /// The paths for `q`, computed on miss / staleness and served from the
  /// shard otherwise. The snapshot is immutable and safe to read after the
  /// call without further synchronization.
  RouteSnapshot lookup(const topo::ParallelNetwork& net, const RouteQuery& q);

  /// Records a link (duplex cable) failure or recovery. Bans/unbans both
  /// directions of the pair and bumps their epochs; affected entries are
  /// recomputed lazily on their next lookup. Requires bind().
  void set_link_state(int plane, LinkId link, bool down);

  /// True while a cable fault-state change could not possibly have
  /// invalidated `snap` (O(1) in the common no-new-faults case). Consumers
  /// holding a snapshot across events re-lookup when this turns false.
  [[nodiscard]] bool current(const RouteEntry& entry) const;

  [[nodiscard]] RouteCacheStats stats() const;

 private:
  static constexpr std::size_t kShards = 16;

  struct QueryHash {
    std::size_t operator()(const RouteQuery& q) const;
  };
  struct Shard {
    mutable std::mutex mu;
    RouteTable table;
    std::unordered_map<RouteQuery, RouteSnapshot, QueryHash> entries;
  };

  [[nodiscard]] std::size_t global_link(int plane, LinkId link) const {
    return plane_offsets_[static_cast<std::size_t>(plane)] +
           static_cast<std::size_t>(link.v);
  }
  /// Copies the current down set into per-plane ban masks + the avoided
  /// list for `q` (empty/null when nothing is down). Caller holds no locks.
  void snapshot_bans(const topo::ParallelNetwork& net, const RouteQuery& q,
                     PlaneBans& bans, bool& any,
                     std::vector<std::pair<std::int32_t, LinkId>>& avoided);
  std::vector<Path> compute(const topo::ParallelNetwork& net,
                            const RouteQuery& q, const PlaneBans* bans);
  std::shared_ptr<RouteEntry> build_entry(const topo::ParallelNetwork& net,
                                          const RouteQuery& q,
                                          RouteTable& table);
  [[nodiscard]] bool entry_current(const RouteEntry& entry,
                                   std::uint64_t now) const;

  const bool enabled_;

  /// Layout + fault state. plane_offsets_/link state arrays are written
  /// once under state_mu_ at bind() and read lock-free afterwards.
  mutable std::mutex state_mu_;
  std::atomic<bool> bound_{false};
  std::vector<std::size_t> plane_offsets_;
  std::size_t total_links_ = 0;
  /// Per-link epoch of the last state change; > entry epoch means the link
  /// changed after the entry was computed.
  std::unique_ptr<std::atomic<std::uint64_t>[]> link_epochs_;
  std::unique_ptr<std::atomic<bool>[]> link_down_;
  std::atomic<std::uint64_t> global_epoch_{0};
  std::atomic<std::size_t> down_count_{0};

  std::array<Shard, kShards> shards_;

  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> invalidations_{0};
  mutable std::atomic<std::uint64_t> compute_ns_{0};
};

}  // namespace pnet::routing
