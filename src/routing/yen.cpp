#include "routing/yen.hpp"

#include <algorithm>
#include <set>

#include "routing/shortest.hpp"
#include "util/rng.hpp"

namespace pnet::routing {

namespace {

/// Orders candidate paths by (hops, lexicographic link ids): deterministic
/// and consistent with the unit-weight metric.
struct PathLess {
  bool operator()(const Path& a, const Path& b) const {
    if (a.hops() != b.hops()) return a.hops() < b.hops();
    return a.links < b.links;
  }
};

}  // namespace

LinkWeights jittered_unit_weights(const topo::Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  LinkWeights weights(static_cast<std::size_t>(g.num_links()));
  for (auto& w : weights) w = 1.0 + rng.next_double() * 1e-6;
  return weights;
}

std::vector<Path> k_shortest_paths(const topo::Graph& g, NodeId src,
                                   NodeId dst, int k,
                                   const LinkWeights* tiebreak_weights,
                                   const std::vector<bool>* base_banned) {
  std::vector<Path> result;
  if (k <= 0 || src == dst) return result;

  const LinkWeights unit =
      tiebreak_weights != nullptr
          ? *tiebreak_weights
          : LinkWeights(static_cast<std::size_t>(g.num_links()), 1.0);

  const std::vector<bool> no_base;
  const std::vector<bool>& base =
      base_banned != nullptr ? *base_banned : no_base;

  auto first = dijkstra(g, src, dst, unit, base);
  if (!first) return result;
  result.push_back(std::move(*first));

  std::set<Path, PathLess> candidates;
  std::vector<bool> banned_links(static_cast<std::size_t>(g.num_links()));
  std::vector<bool> banned_nodes(static_cast<std::size_t>(g.num_nodes()));

  while (static_cast<int>(result.size()) < k) {
    const Path& prev = result.back();

    // Spur from every node of the previous path except the destination.
    Path root_path;
    root_path.plane = prev.plane;
    NodeId spur_node = src;
    for (std::size_t i = 0; i < prev.links.size(); ++i) {
      // Ban links that would recreate any already-found path sharing this
      // root; start from the caller's fault mask.
      if (base.empty()) {
        std::fill(banned_links.begin(), banned_links.end(), false);
      } else {
        banned_links.assign(base.begin(), base.end());
      }
      std::fill(banned_nodes.begin(), banned_nodes.end(), false);
      for (const Path& p : result) {
        if (p.links.size() >= i &&
            std::equal(root_path.links.begin(), root_path.links.end(),
                       p.links.begin())) {
          if (p.links.size() > i) {
            banned_links[static_cast<std::size_t>(p.links[i].v)] = true;
          }
        }
      }
      // Ban the root path's interior nodes so spur paths stay loopless.
      NodeId at = src;
      for (const LinkId id : root_path.links) {
        banned_nodes[static_cast<std::size_t>(at.v)] = true;
        at = g.link(id).dst;
      }

      auto spur = dijkstra(g, spur_node, dst, unit, banned_links,
                           banned_nodes);
      if (spur) {
        Path total;
        total.plane = prev.plane;
        total.links = root_path.links;
        total.links.insert(total.links.end(), spur->links.begin(),
                           spur->links.end());
        const bool known =
            std::find(result.begin(), result.end(), total) != result.end();
        if (!known) candidates.insert(std::move(total));
      }

      if (i < prev.links.size()) {
        root_path.links.push_back(prev.links[i]);
        spur_node = g.link(prev.links[i]).dst;
      }
    }

    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

}  // namespace pnet::routing
