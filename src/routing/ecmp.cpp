#include "routing/ecmp.hpp"

#include "routing/shortest.hpp"
#include "util/rng.hpp"

namespace pnet::routing {

namespace {

void dfs_paths(const topo::Graph& g, NodeId at, NodeId dst,
               const std::vector<int>& dist_to_dst, Path& current,
               std::vector<Path>& out, int cap,
               const std::vector<bool>* banned_links) {
  if (static_cast<int>(out.size()) >= cap) return;
  if (at == dst) {
    out.push_back(current);
    return;
  }
  // Hosts never forward; only the source host may be expanded.
  if (g.is_host(at) && !current.links.empty()) return;
  for (LinkId id : g.out_links(at)) {
    if (banned_links != nullptr &&
        (*banned_links)[static_cast<std::size_t>(id.v)]) {
      continue;
    }
    const NodeId v = g.link(id).dst;
    const int dv = dist_to_dst[static_cast<std::size_t>(v.v)];
    // Stay on the shortest-path DAG: each step must reduce the distance to
    // the destination by exactly one.
    if (dv == kUnreachable ||
        dv != dist_to_dst[static_cast<std::size_t>(at.v)] - 1) {
      continue;
    }
    current.links.push_back(id);
    dfs_paths(g, v, dst, dist_to_dst, current, out, cap, banned_links);
    current.links.pop_back();
  }
}

}  // namespace

std::vector<Path> enumerate_shortest_paths(const topo::Graph& g, NodeId src,
                                           NodeId dst, int cap,
                                           const std::vector<bool>*
                                               banned_links) {
  std::vector<Path> out;
  if (src == dst) return out;
  // BFS from dst over reversed edges == BFS from dst in this graph, because
  // every link has a same-latency reverse twin (duplex construction) and
  // callers ban cables in both directions.
  const std::vector<int> dist_to_dst = bfs_hops(g, dst, banned_links);
  if (dist_to_dst[static_cast<std::size_t>(src.v)] == kUnreachable) {
    return out;
  }
  Path current;
  dfs_paths(g, src, dst, dist_to_dst, current, out, cap, banned_links);
  return out;
}

int ecmp_pick(std::uint64_t flow_key, int count) {
  if (count <= 1) return 0;
  return static_cast<int>(mix64(flow_key) %
                          static_cast<std::uint64_t>(count));
}

}  // namespace pnet::routing
