// Shortest-path primitives: BFS (hop metric), Dijkstra (weighted), and a
// filtered variant used by Yen's algorithm. Host nodes never act as transit:
// a search only expands a host when it is the source, so computed paths obey
// the physical constraint that servers do not forward.
#pragma once

#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "routing/path.hpp"

namespace pnet::routing {

inline constexpr int kUnreachable = std::numeric_limits<int>::max();

/// Hop distance from `src` to every node (kUnreachable if none).
/// `banned_links` (optional, indexed by LinkId::v) excludes failed links:
/// the route-cache recompute path for fault-driven invalidation.
std::vector<int> bfs_hops(const topo::Graph& g, NodeId src,
                          const std::vector<bool>* banned_links = nullptr);

/// One shortest (fewest-hop) path, deterministic tie-break by link id.
std::optional<Path> shortest_path(const topo::Graph& g, NodeId src,
                                  NodeId dst,
                                  const std::vector<bool>* banned_links =
                                      nullptr);

/// Per-link weights for weighted searches; indexed by LinkId::v.
using LinkWeights = std::vector<double>;

/// Weighted shortest path; `banned_links`/`banned_nodes` (optional, may be
/// empty) support Yen's spur computations. Weights must be non-negative.
std::optional<Path> dijkstra(const topo::Graph& g, NodeId src, NodeId dst,
                             const LinkWeights& weights,
                             const std::vector<bool>& banned_links = {},
                             const std::vector<bool>& banned_nodes = {});

/// Hop distances between every pair of switches, indexed by position in
/// `switches`. Used by the fault-tolerance study (Fig 14).
std::vector<std::vector<int>> all_pairs_switch_hops(
    const topo::Graph& g, const std::vector<NodeId>& switches);

}  // namespace pnet::routing
