// Cross-plane path computation for P-Nets.
//
// The paper's key forwarding mechanism (section 4): compute K shortest paths
// per dataplane, then keep the K globally shortest, so subflows naturally
// concentrate on planes that happen to offer shorter paths (the source of
// the heterogeneous latency win) while still spreading across planes at
// equal hop counts.
#pragma once

#include <vector>

#include "routing/path.hpp"
#include "topo/parallel.hpp"

namespace pnet::routing {

/// Per-plane banned-link masks (outer index: plane; inner index: LinkId::v
/// within that plane). nullptr / empty inner vectors mean "no bans". Used by
/// the route cache to recompute entries around failed links.
using PlaneBans = std::vector<std::vector<bool>>;

namespace detail {
/// Plane p's mask, or nullptr when absent/empty.
inline const std::vector<bool>* plane_bans(const PlaneBans* bans, int p) {
  if (bans == nullptr) return nullptr;
  const auto& mask = (*bans)[static_cast<std::size_t>(p)];
  return mask.empty() ? nullptr : &mask;
}
}  // namespace detail

/// K globally-shortest loopless paths between two hosts across all planes.
/// At equal hop count, planes are interleaved round-robin (rank within the
/// plane first, then plane index) so homogeneous P-Nets spread evenly.
/// `tiebreak_seed` != 0 randomizes which equal-hop paths Yen selects inside
/// each plane (vary it per flow on equal-cost-rich fabrics like fat trees —
/// see yen.hpp).
/// `total_cap` bounds the merged result (0 means k); pass k * num_planes to
/// keep every per-plane candidate, e.g. so a failure-aware selector can
/// re-filter by plane without recomputing.
std::vector<Path> ksp_across_planes(const topo::ParallelNetwork& net,
                                    HostId src, HostId dst, int k,
                                    std::uint64_t tiebreak_seed = 0,
                                    int total_cap = 0,
                                    const PlaneBans* bans = nullptr);

/// One shortest path per plane, sorted globally by hop count (shortest-plane
/// first). Used by the "low-latency" single-path interface of section 3.4.
std::vector<Path> shortest_per_plane(const topo::ParallelNetwork& net,
                                     HostId src, HostId dst,
                                     const PlaneBans* bans = nullptr);

/// Equal-cost shortest paths within one plane (plane field filled in).
std::vector<Path> ecmp_paths_in_plane(const topo::ParallelNetwork& net,
                                      int plane, HostId src, HostId dst,
                                      int cap = 256,
                                      const PlaneBans* bans = nullptr);

}  // namespace pnet::routing
