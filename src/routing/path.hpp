// Path representation shared by routing, LP and simulation code.
//
// A Path lives entirely inside one dataplane (plane index + link sequence),
// mirroring the P-Net invariant. Host<->ToR links are included, so hops() is
// the number of links traversed, and hops() - 2 is the switch-to-switch hop
// count for host-to-host paths.
#pragma once

#include <vector>

#include "topo/graph.hpp"

namespace pnet::routing {

struct Path {
  int plane = 0;
  std::vector<LinkId> links;

  [[nodiscard]] int hops() const { return static_cast<int>(links.size()); }
  [[nodiscard]] bool empty() const { return links.empty(); }

  /// Endpoints of the path; the invalid NodeId{} on an empty path (calling
  /// front()/back() on an empty vector is UB, and empty paths legitimately
  /// occur, e.g. partitioned planes after faults).
  [[nodiscard]] NodeId src(const topo::Graph& g) const {
    return links.empty() ? NodeId{} : g.link(links.front()).src;
  }
  [[nodiscard]] NodeId dst(const topo::Graph& g) const {
    return links.empty() ? NodeId{} : g.link(links.back()).dst;
  }

  /// Total one-way propagation + per-hop latency along the path.
  [[nodiscard]] SimTime latency(const topo::Graph& g) const {
    SimTime total = 0;
    for (LinkId id : links) total += g.link(id).latency;
    return total;
  }

  friend bool operator==(const Path&, const Path&) = default;
};

/// True iff the path is link-contiguous from `src` to `dst` and loopless.
bool is_valid_path(const topo::Graph& g, const Path& path, NodeId src,
                   NodeId dst);

}  // namespace pnet::routing
