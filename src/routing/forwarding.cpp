#include "routing/forwarding.hpp"

#include <queue>

#include "routing/shortest.hpp"

namespace pnet::routing {

std::vector<ForwardingTable> build_plane_tables(
    const topo::Graph& graph, const std::vector<NodeId>& switches) {
  // Map node id -> dense switch index for table slots.
  std::vector<int> index_of(static_cast<std::size_t>(graph.num_nodes()), -1);
  for (std::size_t i = 0; i < switches.size(); ++i) {
    index_of[static_cast<std::size_t>(switches[i].v)] = static_cast<int>(i);
  }

  std::vector<ForwardingTable> tables(switches.size());
  for (std::size_t i = 0; i < switches.size(); ++i) {
    tables[i].switch_node = switches[i];
    tables[i].next_hops.resize(switches.size());
  }

  // One BFS per destination over the switch-to-switch subgraph; every
  // switch records each out-link that steps one hop closer.
  for (std::size_t d = 0; d < switches.size(); ++d) {
    const auto dist = bfs_hops(graph, switches[d]);
    for (std::size_t s = 0; s < switches.size(); ++s) {
      if (s == d) continue;
      const int ds = dist[static_cast<std::size_t>(switches[s].v)];
      if (ds == kUnreachable) continue;
      for (LinkId id : graph.out_links(switches[s])) {
        const NodeId v = graph.link(id).dst;
        if (graph.is_host(v)) continue;
        if (dist[static_cast<std::size_t>(v.v)] == ds - 1) {
          tables[s].next_hops[d].push_back(id);
        }
      }
    }
  }
  return tables;
}

ForwardingFootprint forwarding_footprint(const topo::ParallelNetwork& net) {
  ForwardingFootprint footprint;
  for (int p = 0; p < net.num_planes(); ++p) {
    const auto tables = build_plane_tables(net.plane(p).graph,
                                           net.plane(p).switch_nodes);
    for (const auto& table : tables) {
      ++footprint.switches;
      const std::size_t entries = table.entries();
      footprint.total_entries += entries;
      footprint.max_entries_per_switch =
          std::max(footprint.max_entries_per_switch, entries);
    }
  }
  footprint.mean_entries_per_switch =
      footprint.switches > 0
          ? static_cast<double>(footprint.total_entries) /
                static_cast<double>(footprint.switches)
          : 0.0;
  return footprint;
}

bool tables_cover_all_pairs(const topo::Graph& graph,
                            const std::vector<NodeId>& switches,
                            const std::vector<ForwardingTable>& tables) {
  // Walk greedily from every source to every destination using the first
  // installed next hop; path length must match BFS distance.
  for (std::size_t d = 0; d < switches.size(); ++d) {
    const auto dist = bfs_hops(graph, switches[d]);
    for (std::size_t s = 0; s < switches.size(); ++s) {
      if (s == d) continue;
      const int expect = dist[static_cast<std::size_t>(switches[s].v)];
      if (expect == kUnreachable) continue;
      std::size_t at = s;
      int steps = 0;
      while (at != d) {
        const auto& hops = tables[at].next_hops[d];
        if (hops.empty() || steps > expect) return false;
        const NodeId next = graph.link(hops.front()).dst;
        const int idx = [&] {
          for (std::size_t i = 0; i < switches.size(); ++i) {
            if (switches[i] == next) return static_cast<int>(i);
          }
          return -1;
        }();
        if (idx < 0) return false;
        at = static_cast<std::size_t>(idx);
        ++steps;
      }
      if (steps != expect) return false;
    }
  }
  return true;
}

}  // namespace pnet::routing
