file(REMOVE_RECURSE
  "CMakeFiles/example_fault_tolerance.dir/fault_tolerance.cpp.o"
  "CMakeFiles/example_fault_tolerance.dir/fault_tolerance.cpp.o.d"
  "example_fault_tolerance"
  "example_fault_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
