file(REMOVE_RECURSE
  "CMakeFiles/example_rpc_latency.dir/rpc_latency.cpp.o"
  "CMakeFiles/example_rpc_latency.dir/rpc_latency.cpp.o.d"
  "example_rpc_latency"
  "example_rpc_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_rpc_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
