# Empty compiler generated dependencies file for example_rpc_latency.
# This may be replaced when dependencies are built.
