file(REMOVE_RECURSE
  "CMakeFiles/example_traffic_classes.dir/traffic_classes.cpp.o"
  "CMakeFiles/example_traffic_classes.dir/traffic_classes.cpp.o.d"
  "example_traffic_classes"
  "example_traffic_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_traffic_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
