# Empty dependencies file for example_traffic_classes.
# This may be replaced when dependencies are built.
