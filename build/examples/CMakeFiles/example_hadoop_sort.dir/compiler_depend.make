# Empty compiler generated dependencies file for example_hadoop_sort.
# This may be replaced when dependencies are built.
