file(REMOVE_RECURSE
  "CMakeFiles/example_hadoop_sort.dir/hadoop_sort.cpp.o"
  "CMakeFiles/example_hadoop_sort.dir/hadoop_sort.cpp.o.d"
  "example_hadoop_sort"
  "example_hadoop_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hadoop_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
