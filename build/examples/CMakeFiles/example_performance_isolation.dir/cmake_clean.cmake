file(REMOVE_RECURSE
  "CMakeFiles/example_performance_isolation.dir/performance_isolation.cpp.o"
  "CMakeFiles/example_performance_isolation.dir/performance_isolation.cpp.o.d"
  "example_performance_isolation"
  "example_performance_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_performance_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
