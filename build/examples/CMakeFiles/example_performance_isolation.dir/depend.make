# Empty dependencies file for example_performance_isolation.
# This may be replaced when dependencies are built.
