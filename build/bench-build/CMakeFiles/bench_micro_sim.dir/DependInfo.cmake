
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_sim.cpp" "bench-build/CMakeFiles/bench_micro_sim.dir/bench_micro_sim.cpp.o" "gcc" "bench-build/CMakeFiles/bench_micro_sim.dir/bench_micro_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pnet_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pnet_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pnet_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pnet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pnet_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
