file(REMOVE_RECURSE
  "../bench/bench_ablation_failover"
  "../bench/bench_ablation_failover.pdb"
  "CMakeFiles/bench_ablation_failover.dir/bench_ablation_failover.cpp.o"
  "CMakeFiles/bench_ablation_failover.dir/bench_ablation_failover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
