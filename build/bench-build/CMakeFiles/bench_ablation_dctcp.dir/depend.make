# Empty dependencies file for bench_ablation_dctcp.
# This may be replaced when dependencies are built.
