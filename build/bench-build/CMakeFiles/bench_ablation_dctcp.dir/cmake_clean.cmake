file(REMOVE_RECURSE
  "../bench/bench_ablation_dctcp"
  "../bench/bench_ablation_dctcp.pdb"
  "CMakeFiles/bench_ablation_dctcp.dir/bench_ablation_dctcp.cpp.o"
  "CMakeFiles/bench_ablation_dctcp.dir/bench_ablation_dctcp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dctcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
