# Empty dependencies file for bench_fig10_table2.
# This may be replaced when dependencies are built.
