# Empty dependencies file for bench_appendix.
# This may be replaced when dependencies are built.
