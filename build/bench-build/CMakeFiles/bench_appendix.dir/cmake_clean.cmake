file(REMOVE_RECURSE
  "../bench/bench_appendix"
  "../bench/bench_appendix.pdb"
  "CMakeFiles/bench_appendix.dir/bench_appendix.cpp.o"
  "CMakeFiles/bench_appendix.dir/bench_appendix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
