# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/crossval_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/forwarding_test[1]_include.cmake")
include("/root/repo/build/tests/interfaces_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/monitoring_test[1]_include.cmake")
include("/root/repo/build/tests/multitier_test[1]_include.cmake")
include("/root/repo/build/tests/paper_claims_test[1]_include.cmake")
include("/root/repo/build/tests/partition_aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/transport_details_test[1]_include.cmake")
include("/root/repo/build/tests/trimming_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
