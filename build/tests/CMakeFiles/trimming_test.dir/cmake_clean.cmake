file(REMOVE_RECURSE
  "CMakeFiles/trimming_test.dir/trimming_test.cpp.o"
  "CMakeFiles/trimming_test.dir/trimming_test.cpp.o.d"
  "trimming_test"
  "trimming_test.pdb"
  "trimming_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trimming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
