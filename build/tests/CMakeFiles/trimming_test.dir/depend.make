# Empty dependencies file for trimming_test.
# This may be replaced when dependencies are built.
