file(REMOVE_RECURSE
  "CMakeFiles/partition_aggregate_test.dir/partition_aggregate_test.cpp.o"
  "CMakeFiles/partition_aggregate_test.dir/partition_aggregate_test.cpp.o.d"
  "partition_aggregate_test"
  "partition_aggregate_test.pdb"
  "partition_aggregate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
