# Empty dependencies file for partition_aggregate_test.
# This may be replaced when dependencies are built.
