file(REMOVE_RECURSE
  "CMakeFiles/interfaces_test.dir/interfaces_test.cpp.o"
  "CMakeFiles/interfaces_test.dir/interfaces_test.cpp.o.d"
  "interfaces_test"
  "interfaces_test.pdb"
  "interfaces_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interfaces_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
