# Empty dependencies file for interfaces_test.
# This may be replaced when dependencies are built.
