# Empty dependencies file for transport_details_test.
# This may be replaced when dependencies are built.
