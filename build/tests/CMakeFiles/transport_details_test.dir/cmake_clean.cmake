file(REMOVE_RECURSE
  "CMakeFiles/transport_details_test.dir/transport_details_test.cpp.o"
  "CMakeFiles/transport_details_test.dir/transport_details_test.cpp.o.d"
  "transport_details_test"
  "transport_details_test.pdb"
  "transport_details_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_details_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
