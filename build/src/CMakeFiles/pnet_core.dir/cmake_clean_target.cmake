file(REMOVE_RECURSE
  "libpnet_core.a"
)
