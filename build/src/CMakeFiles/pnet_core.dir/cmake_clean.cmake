file(REMOVE_RECURSE
  "CMakeFiles/pnet_core.dir/core/cost_model.cpp.o"
  "CMakeFiles/pnet_core.dir/core/cost_model.cpp.o.d"
  "CMakeFiles/pnet_core.dir/core/interfaces.cpp.o"
  "CMakeFiles/pnet_core.dir/core/interfaces.cpp.o.d"
  "CMakeFiles/pnet_core.dir/core/path_selector.cpp.o"
  "CMakeFiles/pnet_core.dir/core/path_selector.cpp.o.d"
  "libpnet_core.a"
  "libpnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
