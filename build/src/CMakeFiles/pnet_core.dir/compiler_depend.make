# Empty compiler generated dependencies file for pnet_core.
# This may be replaced when dependencies are built.
