file(REMOVE_RECURSE
  "CMakeFiles/pnet_sim.dir/sim/mptcp.cpp.o"
  "CMakeFiles/pnet_sim.dir/sim/mptcp.cpp.o.d"
  "CMakeFiles/pnet_sim.dir/sim/network.cpp.o"
  "CMakeFiles/pnet_sim.dir/sim/network.cpp.o.d"
  "CMakeFiles/pnet_sim.dir/sim/queue.cpp.o"
  "CMakeFiles/pnet_sim.dir/sim/queue.cpp.o.d"
  "CMakeFiles/pnet_sim.dir/sim/tcp.cpp.o"
  "CMakeFiles/pnet_sim.dir/sim/tcp.cpp.o.d"
  "libpnet_sim.a"
  "libpnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
