file(REMOVE_RECURSE
  "libpnet_sim.a"
)
