# Empty dependencies file for pnet_sim.
# This may be replaced when dependencies are built.
