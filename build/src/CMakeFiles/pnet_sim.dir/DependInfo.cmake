
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/mptcp.cpp" "src/CMakeFiles/pnet_sim.dir/sim/mptcp.cpp.o" "gcc" "src/CMakeFiles/pnet_sim.dir/sim/mptcp.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/pnet_sim.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/pnet_sim.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/queue.cpp" "src/CMakeFiles/pnet_sim.dir/sim/queue.cpp.o" "gcc" "src/CMakeFiles/pnet_sim.dir/sim/queue.cpp.o.d"
  "/root/repo/src/sim/tcp.cpp" "src/CMakeFiles/pnet_sim.dir/sim/tcp.cpp.o" "gcc" "src/CMakeFiles/pnet_sim.dir/sim/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pnet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pnet_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
