file(REMOVE_RECURSE
  "libpnet_topo.a"
)
