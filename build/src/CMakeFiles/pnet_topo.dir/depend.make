# Empty dependencies file for pnet_topo.
# This may be replaced when dependencies are built.
