
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/export.cpp" "src/CMakeFiles/pnet_topo.dir/topo/export.cpp.o" "gcc" "src/CMakeFiles/pnet_topo.dir/topo/export.cpp.o.d"
  "/root/repo/src/topo/fat_tree.cpp" "src/CMakeFiles/pnet_topo.dir/topo/fat_tree.cpp.o" "gcc" "src/CMakeFiles/pnet_topo.dir/topo/fat_tree.cpp.o.d"
  "/root/repo/src/topo/jellyfish.cpp" "src/CMakeFiles/pnet_topo.dir/topo/jellyfish.cpp.o" "gcc" "src/CMakeFiles/pnet_topo.dir/topo/jellyfish.cpp.o.d"
  "/root/repo/src/topo/multitier.cpp" "src/CMakeFiles/pnet_topo.dir/topo/multitier.cpp.o" "gcc" "src/CMakeFiles/pnet_topo.dir/topo/multitier.cpp.o.d"
  "/root/repo/src/topo/parallel.cpp" "src/CMakeFiles/pnet_topo.dir/topo/parallel.cpp.o" "gcc" "src/CMakeFiles/pnet_topo.dir/topo/parallel.cpp.o.d"
  "/root/repo/src/topo/xpander.cpp" "src/CMakeFiles/pnet_topo.dir/topo/xpander.cpp.o" "gcc" "src/CMakeFiles/pnet_topo.dir/topo/xpander.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
