file(REMOVE_RECURSE
  "CMakeFiles/pnet_topo.dir/topo/export.cpp.o"
  "CMakeFiles/pnet_topo.dir/topo/export.cpp.o.d"
  "CMakeFiles/pnet_topo.dir/topo/fat_tree.cpp.o"
  "CMakeFiles/pnet_topo.dir/topo/fat_tree.cpp.o.d"
  "CMakeFiles/pnet_topo.dir/topo/jellyfish.cpp.o"
  "CMakeFiles/pnet_topo.dir/topo/jellyfish.cpp.o.d"
  "CMakeFiles/pnet_topo.dir/topo/multitier.cpp.o"
  "CMakeFiles/pnet_topo.dir/topo/multitier.cpp.o.d"
  "CMakeFiles/pnet_topo.dir/topo/parallel.cpp.o"
  "CMakeFiles/pnet_topo.dir/topo/parallel.cpp.o.d"
  "CMakeFiles/pnet_topo.dir/topo/xpander.cpp.o"
  "CMakeFiles/pnet_topo.dir/topo/xpander.cpp.o.d"
  "libpnet_topo.a"
  "libpnet_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnet_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
