
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/ecmp.cpp" "src/CMakeFiles/pnet_routing.dir/routing/ecmp.cpp.o" "gcc" "src/CMakeFiles/pnet_routing.dir/routing/ecmp.cpp.o.d"
  "/root/repo/src/routing/forwarding.cpp" "src/CMakeFiles/pnet_routing.dir/routing/forwarding.cpp.o" "gcc" "src/CMakeFiles/pnet_routing.dir/routing/forwarding.cpp.o.d"
  "/root/repo/src/routing/path.cpp" "src/CMakeFiles/pnet_routing.dir/routing/path.cpp.o" "gcc" "src/CMakeFiles/pnet_routing.dir/routing/path.cpp.o.d"
  "/root/repo/src/routing/plane_paths.cpp" "src/CMakeFiles/pnet_routing.dir/routing/plane_paths.cpp.o" "gcc" "src/CMakeFiles/pnet_routing.dir/routing/plane_paths.cpp.o.d"
  "/root/repo/src/routing/shortest.cpp" "src/CMakeFiles/pnet_routing.dir/routing/shortest.cpp.o" "gcc" "src/CMakeFiles/pnet_routing.dir/routing/shortest.cpp.o.d"
  "/root/repo/src/routing/yen.cpp" "src/CMakeFiles/pnet_routing.dir/routing/yen.cpp.o" "gcc" "src/CMakeFiles/pnet_routing.dir/routing/yen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pnet_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
