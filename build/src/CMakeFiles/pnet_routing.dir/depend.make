# Empty dependencies file for pnet_routing.
# This may be replaced when dependencies are built.
