file(REMOVE_RECURSE
  "CMakeFiles/pnet_routing.dir/routing/ecmp.cpp.o"
  "CMakeFiles/pnet_routing.dir/routing/ecmp.cpp.o.d"
  "CMakeFiles/pnet_routing.dir/routing/forwarding.cpp.o"
  "CMakeFiles/pnet_routing.dir/routing/forwarding.cpp.o.d"
  "CMakeFiles/pnet_routing.dir/routing/path.cpp.o"
  "CMakeFiles/pnet_routing.dir/routing/path.cpp.o.d"
  "CMakeFiles/pnet_routing.dir/routing/plane_paths.cpp.o"
  "CMakeFiles/pnet_routing.dir/routing/plane_paths.cpp.o.d"
  "CMakeFiles/pnet_routing.dir/routing/shortest.cpp.o"
  "CMakeFiles/pnet_routing.dir/routing/shortest.cpp.o.d"
  "CMakeFiles/pnet_routing.dir/routing/yen.cpp.o"
  "CMakeFiles/pnet_routing.dir/routing/yen.cpp.o.d"
  "libpnet_routing.a"
  "libpnet_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnet_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
