file(REMOVE_RECURSE
  "libpnet_routing.a"
)
