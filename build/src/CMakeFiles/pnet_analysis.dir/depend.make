# Empty dependencies file for pnet_analysis.
# This may be replaced when dependencies are built.
