file(REMOVE_RECURSE
  "CMakeFiles/pnet_analysis.dir/analysis/failures.cpp.o"
  "CMakeFiles/pnet_analysis.dir/analysis/failures.cpp.o.d"
  "CMakeFiles/pnet_analysis.dir/analysis/plane_stats.cpp.o"
  "CMakeFiles/pnet_analysis.dir/analysis/plane_stats.cpp.o.d"
  "libpnet_analysis.a"
  "libpnet_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnet_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
