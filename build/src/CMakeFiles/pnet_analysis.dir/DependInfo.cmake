
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/failures.cpp" "src/CMakeFiles/pnet_analysis.dir/analysis/failures.cpp.o" "gcc" "src/CMakeFiles/pnet_analysis.dir/analysis/failures.cpp.o.d"
  "/root/repo/src/analysis/plane_stats.cpp" "src/CMakeFiles/pnet_analysis.dir/analysis/plane_stats.cpp.o" "gcc" "src/CMakeFiles/pnet_analysis.dir/analysis/plane_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pnet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pnet_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
