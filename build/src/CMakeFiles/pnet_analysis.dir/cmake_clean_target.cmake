file(REMOVE_RECURSE
  "libpnet_analysis.a"
)
