file(REMOVE_RECURSE
  "CMakeFiles/pnet_lp.dir/lp/link_index.cpp.o"
  "CMakeFiles/pnet_lp.dir/lp/link_index.cpp.o.d"
  "CMakeFiles/pnet_lp.dir/lp/mcf.cpp.o"
  "CMakeFiles/pnet_lp.dir/lp/mcf.cpp.o.d"
  "CMakeFiles/pnet_lp.dir/lp/simplex.cpp.o"
  "CMakeFiles/pnet_lp.dir/lp/simplex.cpp.o.d"
  "libpnet_lp.a"
  "libpnet_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnet_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
