file(REMOVE_RECURSE
  "libpnet_lp.a"
)
