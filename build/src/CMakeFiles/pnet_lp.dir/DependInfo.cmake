
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lp/link_index.cpp" "src/CMakeFiles/pnet_lp.dir/lp/link_index.cpp.o" "gcc" "src/CMakeFiles/pnet_lp.dir/lp/link_index.cpp.o.d"
  "/root/repo/src/lp/mcf.cpp" "src/CMakeFiles/pnet_lp.dir/lp/mcf.cpp.o" "gcc" "src/CMakeFiles/pnet_lp.dir/lp/mcf.cpp.o.d"
  "/root/repo/src/lp/simplex.cpp" "src/CMakeFiles/pnet_lp.dir/lp/simplex.cpp.o" "gcc" "src/CMakeFiles/pnet_lp.dir/lp/simplex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pnet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pnet_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
