# Empty compiler generated dependencies file for pnet_lp.
# This may be replaced when dependencies are built.
