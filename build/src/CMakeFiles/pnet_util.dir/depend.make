# Empty dependencies file for pnet_util.
# This may be replaced when dependencies are built.
