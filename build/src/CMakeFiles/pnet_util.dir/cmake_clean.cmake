file(REMOVE_RECURSE
  "CMakeFiles/pnet_util.dir/util/flags.cpp.o"
  "CMakeFiles/pnet_util.dir/util/flags.cpp.o.d"
  "CMakeFiles/pnet_util.dir/util/stats.cpp.o"
  "CMakeFiles/pnet_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/pnet_util.dir/util/table.cpp.o"
  "CMakeFiles/pnet_util.dir/util/table.cpp.o.d"
  "libpnet_util.a"
  "libpnet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
