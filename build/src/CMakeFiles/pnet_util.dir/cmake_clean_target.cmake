file(REMOVE_RECURSE
  "libpnet_util.a"
)
