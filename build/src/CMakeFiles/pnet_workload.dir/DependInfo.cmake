
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/apps.cpp" "src/CMakeFiles/pnet_workload.dir/workload/apps.cpp.o" "gcc" "src/CMakeFiles/pnet_workload.dir/workload/apps.cpp.o.d"
  "/root/repo/src/workload/open_loop.cpp" "src/CMakeFiles/pnet_workload.dir/workload/open_loop.cpp.o" "gcc" "src/CMakeFiles/pnet_workload.dir/workload/open_loop.cpp.o.d"
  "/root/repo/src/workload/partition_aggregate.cpp" "src/CMakeFiles/pnet_workload.dir/workload/partition_aggregate.cpp.o" "gcc" "src/CMakeFiles/pnet_workload.dir/workload/partition_aggregate.cpp.o.d"
  "/root/repo/src/workload/patterns.cpp" "src/CMakeFiles/pnet_workload.dir/workload/patterns.cpp.o" "gcc" "src/CMakeFiles/pnet_workload.dir/workload/patterns.cpp.o.d"
  "/root/repo/src/workload/traces.cpp" "src/CMakeFiles/pnet_workload.dir/workload/traces.cpp.o" "gcc" "src/CMakeFiles/pnet_workload.dir/workload/traces.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pnet_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pnet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pnet_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
