# Empty compiler generated dependencies file for pnet_workload.
# This may be replaced when dependencies are built.
