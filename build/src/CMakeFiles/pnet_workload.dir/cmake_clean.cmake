file(REMOVE_RECURSE
  "CMakeFiles/pnet_workload.dir/workload/apps.cpp.o"
  "CMakeFiles/pnet_workload.dir/workload/apps.cpp.o.d"
  "CMakeFiles/pnet_workload.dir/workload/open_loop.cpp.o"
  "CMakeFiles/pnet_workload.dir/workload/open_loop.cpp.o.d"
  "CMakeFiles/pnet_workload.dir/workload/partition_aggregate.cpp.o"
  "CMakeFiles/pnet_workload.dir/workload/partition_aggregate.cpp.o.d"
  "CMakeFiles/pnet_workload.dir/workload/patterns.cpp.o"
  "CMakeFiles/pnet_workload.dir/workload/patterns.cpp.o.d"
  "CMakeFiles/pnet_workload.dir/workload/traces.cpp.o"
  "CMakeFiles/pnet_workload.dir/workload/traces.cpp.o.d"
  "libpnet_workload.a"
  "libpnet_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnet_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
