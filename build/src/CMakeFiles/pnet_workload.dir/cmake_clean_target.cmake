file(REMOVE_RECURSE
  "libpnet_workload.a"
)
